//! Length-prefixed JSON frames.
//!
//! Every protocol message is one frame: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Length prefixing keeps the
//! reader trivial (no streaming JSON parser needed) and lets the server
//! reject oversized payloads before allocating for them.

use bytes::{Buf, BufMut, Bytes};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Frames larger than this are rejected as malformed rather than
/// allocated — a corrupt or hostile length prefix must not OOM the server.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A peer that starts a frame and then sends nothing for this long is
/// treated as gone: waiting out mid-frame timeouts forever would let one
/// stalled (or hostile) connection pin a worker indefinitely.
pub const MAX_MID_FRAME_STALL: Duration = Duration::from_secs(30);

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload was not the JSON we expected.
    Decode(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "frame i/o error: {e}"),
            Self::Closed => write!(f, "connection closed"),
            Self::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit {MAX_FRAME_LEN}"),
            Self::Decode(msg) => write!(f, "frame decode error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes one frame: length prefix plus payload, bounded by the default
/// [`MAX_MID_FRAME_STALL`] write-stall deadline.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    write_frame_limited(w, payload, MAX_MID_FRAME_STALL)
}

/// Writes one frame, erroring if the writer makes no progress for
/// `stall_limit`. The deadline only bites when the underlying stream has a
/// write timeout set (so `write` surfaces `WouldBlock`/`TimedOut` instead
/// of blocking forever) — sockets on the serve and client paths do.
pub fn write_frame_limited(
    w: &mut impl Write,
    payload: &[u8],
    stall_limit: Duration,
) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(payload.len()));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    write_all_limited(w, &buf, stall_limit)?;
    w.flush()?;
    Ok(())
}

/// `write_all` with a stall deadline: a peer that accepts no bytes for
/// `stall_limit` (its receive window stays closed) is treated as gone.
/// Mirrors [`read_full_limited`]: any progress resets the clock.
pub fn write_all_limited(
    w: &mut impl Write,
    buf: &[u8],
    stall_limit: Duration,
) -> std::io::Result<()> {
    let mut written = 0usize;
    let mut stall_start: Option<Instant> = None;
    while written < buf.len() {
        match w.write(&buf[written..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer accepts no bytes",
                ))
            }
            Ok(n) => {
                written += n;
                stall_start = None;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                let since = stall_start.get_or_insert_with(Instant::now);
                if since.elapsed() >= stall_limit {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "peer stalled mid-write",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Whether a [`FrameError`] is a read timeout at a frame boundary — the
/// connection is idle, not broken, and the caller may simply retry.
pub fn is_idle_timeout(e: &FrameError) -> bool {
    matches!(e, FrameError::Io(io) if is_timeout(io))
}

fn read_full(r: &mut impl Read, buf: &mut [u8], filled: usize) -> std::io::Result<()> {
    read_full_limited(r, buf, filled, MAX_MID_FRAME_STALL)
}

fn read_full_limited(
    r: &mut impl Read,
    buf: &mut [u8],
    mut filled: usize,
    stall_limit: Duration,
) -> std::io::Result<()> {
    // Unlike `read_exact`, keeps waiting through read timeouts: once a
    // frame has started arriving, a slow peer mid-frame is not an error —
    // but only up to `stall_limit` without a single byte of progress.
    let mut stall_start: Option<Instant> = None;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame",
                ))
            }
            Ok(n) => {
                filled += n;
                stall_start = None;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                let since = stall_start.get_or_insert_with(Instant::now);
                if since.elapsed() >= stall_limit {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame's payload.
///
/// Returns [`FrameError::Closed`] on EOF at a frame boundary (the peer
/// hung up cleanly); EOF mid-frame is an I/O error. A read timeout at a
/// frame boundary surfaces as an I/O error matched by [`is_idle_timeout`];
/// timeouts mid-frame are waited out instead.
pub fn read_frame(r: &mut impl Read) -> Result<Bytes, FrameError> {
    let mut header = [0u8; 4];
    match r.read(&mut header) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(n) => read_full(r, &mut header, n)?,
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => read_full(r, &mut header, 0)?,
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = Bytes::copy_from_slice(&header).get_u32() as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, 0)?;
    Ok(Bytes::from(payload))
}

/// Serializes `msg` as JSON and writes it as one frame.
pub fn write_message<T: serde::Serialize>(w: &mut impl Write, msg: &T) -> Result<(), FrameError> {
    write_message_limited(w, msg, MAX_MID_FRAME_STALL)
}

/// [`write_message`] with an explicit write-stall deadline.
pub fn write_message_limited<T: serde::Serialize>(
    w: &mut impl Write,
    msg: &T,
    stall_limit: Duration,
) -> Result<(), FrameError> {
    let json = serde_json::to_string(msg).map_err(|e| FrameError::Decode(e.to_string()))?;
    write_frame_limited(w, json.as_bytes(), stall_limit)
}

/// Reads one frame and deserializes its JSON payload.
pub fn read_message<T: serde::Deserialize>(r: &mut impl Read) -> Result<T, FrameError> {
    let payload = read_frame(r)?;
    serde_json::from_slice(payload.as_ref()).map_err(|e| FrameError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 5]);
        let mut cursor = std::io::Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap();
        assert_eq!(got.as_ref(), b"hello");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn message_round_trip() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Ping).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let got: Request = read_message(&mut cursor).unwrap();
        assert_eq!(got, Request::Ping);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        bytes::BufMut::put_u32(&mut buf, (MAX_FRAME_LEN + 1) as u32);
        buf.extend_from_slice(&[0; 8]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn eof_inside_header_is_io_error() {
        let mut cursor = std::io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    struct AlwaysTimeout;
    impl Read for AlwaysTimeout {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "slow"))
        }
    }

    #[test]
    fn mid_frame_stall_hits_the_deadline() {
        let mut buf = [0u8; 4];
        let err = read_full_limited(&mut AlwaysTimeout, &mut buf, 0, Duration::ZERO).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }

    /// A sink whose kernel buffer is permanently full.
    struct NeverAccepts;
    impl Write for NeverAccepts {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn mid_write_stall_hits_the_deadline() {
        let err = write_all_limited(&mut NeverAccepts, b"abc", Duration::ZERO).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);

        match write_frame_limited(&mut NeverAccepts, b"abc", Duration::ZERO) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::TimedOut),
            other => panic!("expected stalled write, got {other:?}"),
        }
    }
}
