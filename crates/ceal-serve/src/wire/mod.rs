//! The wire layer: everything that crosses a socket, in one place.
//!
//! Three parties speak this layer — tuning clients, the server's two
//! serve cores, and fleet measurement workers — so the frame codec
//! ([`frame`]) and the message vocabulary ([`protocol`]) live together
//! here instead of being duplicated per binary. The rest of the crate
//! (and external users) keep their historical `ceal_serve::frame` /
//! `ceal_serve::protocol` paths via re-exports in the crate root.

pub mod frame;
pub mod protocol;
