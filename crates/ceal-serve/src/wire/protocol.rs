//! Wire protocol: the request/response vocabulary of the tuning service.
//!
//! Everything on the wire is one JSON document per frame (see
//! [`crate::frame`]), serialized from these enums with serde's
//! externally-tagged layout. The protocol is versioned by
//! [`PROTOCOL_VERSION`]; [`Request::Ping`] echoes it so clients can detect
//! a mismatched server before doing real work.

use ceal_fleet::{FleetReport, TaskReport, TaskSpec};
use serde::{Deserialize, Serialize};

/// Bumped on any incompatible change to [`Request`] or [`Response`].
///
/// v2: [`MetricsReport`] gained `sessions_rebuilt` (journal-backed session
/// recovery after a server restart).
///
/// v3: distributed fleet — [`Request::RegisterWorker`],
/// [`Request::Heartbeat`], [`Request::TaskResult`],
/// [`Response::WorkerRegistered`], [`Response::TaskAssign`], and the
/// `fleet` section of [`MetricsReport`].
///
/// v4: tiered cache — [`SessionStatus`] gained `warm_source`
/// (`exact`/`transfer`/`cold`); [`MetricsReport`] gained the LRU-front
/// counters (`cache_lru_*`), `cache_persist_failures`, and
/// `cache_transfer_seeded`. All additions are `#[serde(default)]`, so v3
/// payloads still parse.
///
/// v5: observability — [`SessionStatus`] gained `trace` (the campaign's
/// 16-hex-digit trace id), [`EndpointStats`] gained HDR-histogram
/// percentiles (`p50_us`/`p99_us`/`p999_us`), and
/// [`ceal_fleet::TaskSpec`] gained `trace`/`span` so a scattered
/// measurement carries its originating session's trace context through
/// worker execution. All additions are `#[serde(default)]`, so v4
/// payloads still parse.
///
/// v6: overload protection — [`Request::Health`],
/// [`Response::Busy`] (typed load shedding with a server-suggested
/// retry delay), [`Response::Health`] with [`HealthReport`] /
/// [`BreakerStatus`], and the shed/breaker counters on
/// [`MetricsReport`] (`requests_shed`, `connections_rejected`,
/// `oracle_breaker_opens`, `cache_breaker_opens`). All additions are
/// `#[serde(default)]`, so v5 payloads still parse.
pub const PROTOCOL_VERSION: u32 = 6;

/// Parameters shared by one-shot tuning and session creation.
///
/// They mirror the `tune` CLI flags one-to-one: a `(workflow, objective,
/// budget, pool, seed, algo)` tuple fully determines a tuning run, which is
/// what makes results cacheable across clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneParams {
    /// Workflow name: `LV`, `HS`, or `GP`.
    pub workflow: String,
    /// Objective: `exec` (execution time) or `comp` (computer time).
    pub objective: String,
    /// Coupled workflow-run budget.
    pub budget: u64,
    /// Candidate-pool size.
    pub pool: u64,
    /// Seed controlling pool sampling and every tuner choice.
    pub seed: u64,
    /// Algorithm: `ceal`, `al`, `rs`, `geist`, `alph`, `bo`, or `rl`.
    pub algo: String,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness / version check.
    Ping,
    /// Run a complete tuning campaign and return the recommendation.
    /// Answered from the persistent cache when an identical campaign has
    /// already completed.
    Tune(TuneParams),
    /// Open an incremental tuning session.
    CreateSession {
        /// Campaign parameters (same vocabulary as [`Request::Tune`]).
        params: TuneParams,
        /// Probability in `[0, 1)` that a coupled measurement attempt
        /// crashes (server-side fault injection for testing collectors).
        failure_rate: f64,
        /// Seed for the injected-fault stream.
        fault_seed: u64,
    },
    /// Spend up to `runs` coupled measurements advancing a session through
    /// its phases.
    Advance {
        /// Session ID from [`Response::SessionCreated`].
        session: u64,
        /// Maximum coupled runs to spend in this step.
        runs: u64,
    },
    /// Report a session's current phase and progress.
    Status {
        /// Session ID.
        session: u64,
    },
    /// Score configurations with a session's trained surrogate (batched,
    /// fanned out over the server's thread pool).
    Predict {
        /// Session ID.
        session: u64,
        /// Full parameter vectors to score.
        configs: Vec<Vec<i64>>,
    },
    /// Measure one ad-hoc configuration with a session's oracle. Infeasible
    /// configurations produce an error frame, never a dead worker.
    Measure {
        /// Session ID.
        session: u64,
        /// Full parameter vector.
        config: Vec<i64>,
    },
    /// Contribute historical component samples to a session (`D_hist`,
    /// paper §7.5). Shape mismatches produce an error frame.
    PushHistory {
        /// Session ID.
        session: u64,
        /// `samples[j]` holds `(values, objective_value)` pairs for
        /// component `j`.
        samples: Vec<Vec<(Vec<i64>, f64)>>,
    },
    /// Close a session, releasing its state.
    CloseSession {
        /// Session ID.
        session: u64,
    },
    /// Per-endpoint counters and latency histograms.
    Metrics,
    /// Liveness with substance: queue depths, shed/breaker counters, and
    /// uptime. Exempt from load shedding so operators can always see why
    /// the server is saying [`Response::Busy`].
    Health,
    /// Stop accepting connections, drain in-flight work, and exit the
    /// serve loop.
    Shutdown,
    /// Join the measurement fleet. Answered with
    /// [`Response::WorkerRegistered`] carrying the worker's id and lease.
    RegisterWorker {
        /// Self-reported worker name (hostname, usually); shown in
        /// per-worker metrics.
        name: String,
    },
    /// Renew the worker's lease and fetch work. Answered with
    /// [`Response::TaskAssign`] (possibly empty). The fleet is strictly
    /// pull-based: the coordinator never pushes frames, so the heartbeat
    /// doubles as the task fetch.
    Heartbeat {
        /// Worker id from [`Response::WorkerRegistered`].
        worker: u64,
    },
    /// Deliver completed measurements; also renews the lease and fetches
    /// more work, so a busy worker never sends a separate heartbeat.
    TaskResult {
        /// Worker id from [`Response::WorkerRegistered`].
        worker: u64,
        /// Outcomes for previously assigned tasks, any order.
        results: Vec<TaskReport>,
    },
}

/// One session's externally visible progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStatus {
    /// Session ID.
    pub session: u64,
    /// Phase name: `created`, `collecting-history`, `bootstrapping`,
    /// `refining`, or `done`.
    pub state: String,
    /// Coupled runs still available.
    pub budget_left: u64,
    /// Coupled measurements taken so far.
    pub measured: u64,
    /// Historical component samples held.
    pub history_samples: u64,
    /// The surrogate's recommended configuration (once fitted).
    pub best: Option<Vec<i64>>,
    /// The surrogate's score for `best` (lower is better).
    pub best_value: Option<f64>,
    /// How the campaign was warmed from the cache: `exact` (identical
    /// campaign replayed, zero oracle spend), `transfer` (bootstrap seeded
    /// from a near-miss sibling platform's samples), or `cold`. Empty when
    /// talking to a pre-v4 server.
    #[serde(default)]
    pub warm_source: String,
    /// The campaign's trace identifier (16 hex digits), for correlating
    /// this session's spans across the coordinator and fleet workers.
    /// Empty when tracing is disabled or the server predates v5.
    #[serde(default)]
    pub trace: String,
}

/// Latency and error counters for one endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Endpoint name (matches the [`Request`] variant, kebab-case).
    pub name: String,
    /// Requests handled.
    pub count: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Total handling time, microseconds.
    pub total_us: u64,
    /// Legacy coarse latency histogram: `< 100µs, < 1ms, < 10ms, < 100ms,
    /// < 1s, ≥ 1s`. Since v5 this is collapsed from the HDR histogram, so
    /// samples within one log-bucket (≤3.2 %) of a bound may land one
    /// bucket high; prefer the percentile fields.
    pub buckets: Vec<u64>,
    /// Median handling latency, microseconds (HDR estimate, ≤3.2 %
    /// relative error). Zero when talking to a pre-v5 server.
    #[serde(default)]
    pub p50_us: u64,
    /// 99th-percentile handling latency, microseconds.
    #[serde(default)]
    pub p99_us: u64,
    /// 99.9th-percentile handling latency, microseconds.
    #[serde(default)]
    pub p999_us: u64,
}

/// The `metrics` endpoint's payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Per-endpoint counters, one entry per endpoint that has seen
    /// traffic.
    pub endpoints: Vec<EndpointStats>,
    /// Oracle measurements spent (coupled + solo) across all requests.
    pub oracle_measurements: u64,
    /// Tune/session requests answered from the persistent cache.
    pub cache_hits: u64,
    /// Tune/session requests that had to run the tuner.
    pub cache_misses: u64,
    /// Sessions opened since startup.
    pub sessions_created: u64,
    /// Sessions evicted for idleness.
    pub sessions_evicted: u64,
    /// Sessions rebuilt from their on-disk journals at startup.
    pub sessions_rebuilt: u64,
    /// Completed campaigns the cache failed to persist to disk (still
    /// served from memory). `default` so v3 reports still parse.
    #[serde(default)]
    pub cache_persist_failures: u64,
    /// Sessions seeded from a near-miss sibling platform's cached
    /// campaign. `default` so v3 reports still parse.
    #[serde(default)]
    pub cache_transfer_seeded: u64,
    /// Cache lookups answered by the in-memory LRU front.
    #[serde(default)]
    pub cache_lru_hits: u64,
    /// Cache lookups that had to consult a shard on disk.
    #[serde(default)]
    pub cache_lru_misses: u64,
    /// Entries evicted from the LRU front to stay under capacity.
    #[serde(default)]
    pub cache_lru_evictions: u64,
    /// Entries currently resident in the LRU front.
    #[serde(default)]
    pub cache_lru_len: u64,
    /// Sessions currently live.
    pub active_sessions: u64,
    /// Measurement-fleet counters (all-zero when no worker ever
    /// registered). `default` so v2 reports still parse.
    #[serde(default)]
    pub fleet: FleetReport,
    /// Requests answered with [`Response::Busy`] because the dispatch
    /// queue crossed its high watermark. `default` so v5 reports parse.
    #[serde(default)]
    pub requests_shed: u64,
    /// Connections refused at accept because the live-connection cap was
    /// reached. `default` so v5 reports parse.
    #[serde(default)]
    pub connections_rejected: u64,
    /// Times the oracle-measurement circuit breaker opened.
    #[serde(default)]
    pub oracle_breaker_opens: u64,
    /// Times the cache-persist circuit breaker opened.
    #[serde(default)]
    pub cache_breaker_opens: u64,
}

/// One circuit breaker's externally visible state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BreakerStatus {
    /// `closed`, `open`, or `half-open`.
    pub state: String,
    /// Consecutive failures recorded since the last success.
    pub consecutive_failures: u64,
    /// Times this breaker has opened since startup.
    pub opens: u64,
}

/// The `health` endpoint's payload: enough to diagnose a shedding server
/// from the outside.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HealthReport {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections currently admitted.
    pub live_connections: u64,
    /// Admission cap on live connections.
    pub max_connections: u64,
    /// Requests currently queued or executing on the dispatch pool.
    pub dispatch_in_flight: u64,
    /// Shedding starts when `dispatch_in_flight` reaches this.
    pub dispatch_high_watermark: u64,
    /// Shedding stops once `dispatch_in_flight` falls back to this.
    pub dispatch_low_watermark: u64,
    /// Whether the server is currently shedding sheddable requests.
    pub shedding: bool,
    /// Requests answered with [`Response::Busy`] since startup.
    pub requests_shed: u64,
    /// Connections refused at accept since startup.
    pub connections_rejected: u64,
    /// Sessions currently live.
    pub active_sessions: u64,
    /// Oracle-measurement breaker state.
    pub oracle_breaker: BreakerStatus,
    /// Cache-persist breaker state.
    pub cache_breaker: BreakerStatus,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong {
        /// Server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Reply to [`Request::Tune`].
    TuneResult {
        /// Recommended configuration (full parameter vector).
        best: Vec<i64>,
        /// Measured objective value of `best`.
        best_value: f64,
        /// Coupled runs the tuner consumed.
        runs_used: u64,
        /// Standalone component runs the tuner consumed.
        component_runs: u64,
        /// Whether the answer came from the persistent cache.
        from_cache: bool,
    },
    /// Reply to [`Request::CreateSession`].
    SessionCreated {
        /// Status of the new session; warm-cache sessions start `done`.
        status: SessionStatus,
        /// Whether the session was bootstrapped from the persistent cache
        /// (surrogate refitted from cached samples, zero oracle spend).
        from_cache: bool,
    },
    /// Reply to [`Request::Advance`] / [`Request::Status`] /
    /// [`Request::PushHistory`].
    Session(SessionStatus),
    /// Reply to [`Request::Predict`]: scores aligned with the request's
    /// configs (lower predicted value = better).
    Predictions {
        /// Predicted objective values.
        values: Vec<f64>,
    },
    /// Reply to [`Request::Measure`].
    Measured {
        /// Objective value.
        value: f64,
        /// Wall-clock execution time, seconds.
        exec_time: f64,
        /// Computer time, core-hours.
        computer_time: f64,
    },
    /// Reply to [`Request::Metrics`].
    Metrics(MetricsReport),
    /// Reply to [`Request::Health`].
    Health(HealthReport),
    /// Typed load shedding: the server is over its dispatch watermark (or
    /// connection cap) and declined this request without doing work. The
    /// connection stays usable; retry after the suggested delay.
    Busy {
        /// Server-suggested delay before retrying, milliseconds — scaled
        /// to the current queue depth so a deep backlog pushes clients
        /// further out.
        retry_after_ms: u64,
    },
    /// Reply to [`Request::RegisterWorker`].
    WorkerRegistered {
        /// Coordinator-assigned worker id; quote it on every poll.
        worker: u64,
        /// Lease duration, milliseconds. A worker that stays silent longer
        /// is marked dead and its in-flight tasks are re-scattered.
        lease_ms: u64,
    },
    /// Reply to [`Request::Heartbeat`] / [`Request::TaskResult`]: newly
    /// assigned work (often empty).
    TaskAssign {
        /// Tasks for this worker to execute, any order.
        tasks: Vec<TaskSpec>,
    },
    /// Generic acknowledgement (close, shutdown).
    Ok,
    /// Any failure: the request was understood but could not be served.
    /// The connection stays usable.
    Error {
        /// Stable machine-readable code: `bad-request`, `unknown-session`,
        /// `unknown-worker`, `not-ready`, `infeasible`,
        /// `measurement-failed`, `history-mismatch`, `shutting-down`, or
        /// `internal`.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::Tune(TuneParams {
                workflow: "LV".into(),
                objective: "comp".into(),
                budget: 25,
                pool: 500,
                seed: 7,
                algo: "ceal".into(),
            }),
            Request::Advance {
                session: 3,
                runs: 10,
            },
            Request::Predict {
                session: 3,
                configs: vec![vec![100, 20, 1, 50, 10, 1]],
            },
            Request::PushHistory {
                session: 3,
                samples: vec![vec![(vec![4, 2], 1.5)], vec![]],
            },
            Request::RegisterWorker {
                name: "worker-a".into(),
            },
            Request::Heartbeat { worker: 2 },
            Request::TaskResult {
                worker: 2,
                results: vec![TaskReport {
                    task: 9,
                    outcome: ceal_fleet::TaskOutcome::Measured {
                        value: 1.0,
                        exec_time: 2.0,
                        computer_time: 0.25,
                    },
                }],
            },
            Request::Shutdown,
            Request::Health,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "round trip failed for {json}");
        }
    }

    #[test]
    fn response_round_trips_through_json() {
        let resps = vec![
            Response::Pong {
                version: PROTOCOL_VERSION,
            },
            Response::TuneResult {
                best: vec![18, 18, 2, 18, 18, 2],
                best_value: 1.25,
                runs_used: 25,
                component_runs: 40,
                from_cache: true,
            },
            Response::Session(SessionStatus {
                session: 1,
                state: "refining".into(),
                budget_left: 5,
                measured: 20,
                history_samples: 12,
                best: Some(vec![1, 2]),
                best_value: Some(0.5),
                warm_source: "cold".into(),
                trace: "9f2c51aa03b7e4d1".into(),
            }),
            Response::Session(SessionStatus {
                session: 2,
                state: "created".into(),
                budget_left: 25,
                measured: 0,
                history_samples: 0,
                best: None,
                best_value: None,
                warm_source: "transfer".into(),
                trace: String::new(),
            }),
            Response::WorkerRegistered {
                worker: 4,
                lease_ms: 1500,
            },
            Response::TaskAssign {
                tasks: vec![TaskSpec {
                    task: 9,
                    session: 1,
                    config_index: 0,
                    config: vec![100, 20, 1, 50, 10, 1],
                    workflow: "LV".into(),
                    objective: "comp".into(),
                    oracle_seed: 2021,
                    trace: 0x9f2c_51aa_03b7_e4d1,
                    span: 7,
                }],
            },
            Response::Error {
                code: "infeasible".into(),
                message: "nope".into(),
            },
            Response::Busy { retry_after_ms: 75 },
            Response::Health(HealthReport {
                uptime_ms: 12_000,
                live_connections: 3,
                max_connections: 16_384,
                dispatch_in_flight: 17,
                dispatch_high_watermark: 16,
                dispatch_low_watermark: 8,
                shedding: true,
                requests_shed: 41,
                connections_rejected: 2,
                active_sessions: 1,
                oracle_breaker: BreakerStatus {
                    state: "closed".into(),
                    consecutive_failures: 0,
                    opens: 0,
                },
                cache_breaker: BreakerStatus {
                    state: "open".into(),
                    consecutive_failures: 3,
                    opens: 1,
                },
            }),
        ];
        for resp in resps {
            let json = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(back, resp, "round trip failed for {json}");
        }
    }

    #[test]
    fn v3_payloads_without_cache_fields_still_parse() {
        // A v3 server's SessionStatus has no warm_source.
        let status: SessionStatus = serde_json::from_str(
            r#"{"session":1,"state":"done","budget_left":0,"measured":8,
                "history_samples":12,"best":[1,2],"best_value":0.5}"#,
        )
        .unwrap();
        assert_eq!(status.warm_source, "");
        // And its MetricsReport has none of the cache_* v4 counters.
        let report: MetricsReport = serde_json::from_str(
            r#"{"endpoints":[],"oracle_measurements":9,"cache_hits":1,
                "cache_misses":2,"sessions_created":3,"sessions_evicted":0,
                "sessions_rebuilt":0,"active_sessions":3}"#,
        )
        .unwrap();
        assert_eq!(report.cache_persist_failures, 0);
        assert_eq!(report.cache_lru_hits, 0);
        assert_eq!(report.cache_transfer_seeded, 0);
    }

    #[test]
    fn v4_payloads_without_trace_fields_still_parse() {
        // A v4 server's SessionStatus has no trace id.
        let status: SessionStatus = serde_json::from_str(
            r#"{"session":1,"state":"done","budget_left":0,"measured":8,
                "history_samples":12,"best":[1,2],"best_value":0.5,
                "warm_source":"exact"}"#,
        )
        .unwrap();
        assert_eq!(status.trace, "");
        // Its EndpointStats has no HDR percentiles.
        let stats: EndpointStats = serde_json::from_str(
            r#"{"name":"ping","count":3,"errors":0,"total_us":120,
                "buckets":[3,0,0,0,0,0]}"#,
        )
        .unwrap();
        assert_eq!((stats.p50_us, stats.p99_us, stats.p999_us), (0, 0, 0));
        // And its TaskSpec carries no trace context.
        let task: TaskSpec = serde_json::from_str(
            r#"{"task":9,"session":1,"config_index":0,"config":[1,2],
                "workflow":"LV","objective":"comp","oracle_seed":2021}"#,
        )
        .unwrap();
        assert_eq!((task.trace, task.span), (0, 0));
    }

    #[test]
    fn v5_payloads_without_overload_fields_still_parse() {
        // A v5 server's MetricsReport has no shed/breaker counters.
        let report: MetricsReport = serde_json::from_str(
            r#"{"endpoints":[],"oracle_measurements":9,"cache_hits":1,
                "cache_misses":2,"sessions_created":3,"sessions_evicted":0,
                "sessions_rebuilt":0,"active_sessions":3}"#,
        )
        .unwrap();
        assert_eq!(report.requests_shed, 0);
        assert_eq!(report.connections_rejected, 0);
        assert_eq!(report.oracle_breaker_opens, 0);
        assert_eq!(report.cache_breaker_opens, 0);
    }
}
