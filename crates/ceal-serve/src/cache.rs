//! Persistent autotune cache.
//!
//! A completed campaign is a pure function of its [`CacheKey`] — workflow,
//! platform fingerprint, objective, pool seed/size, budget, and algorithm —
//! so its result can be served to every later client without re-tuning
//! (the Collective Knowledge argument: autotuning results become valuable
//! when shared). Entries carry the campaign's measured `(config, value)`
//! samples too, so a warm session can refit its surrogate from the cache
//! with zero oracle spend.
//!
//! The cache persists as a JSON file guarded by an FNV-64 checksum; a
//! truncated or hand-edited file fails validation and is ignored rather
//! than trusted.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Everything that determines a campaign's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheKey {
    /// Workflow name, uppercase.
    pub workflow: String,
    /// Fingerprint of the measurement platform (see
    /// [`platform_fingerprint`]).
    pub platform: String,
    /// Objective: `exec` or `comp`.
    pub objective: String,
    /// Candidate-pool size.
    pub pool: u64,
    /// Pool/tuner seed.
    pub seed: u64,
    /// Coupled-run budget.
    pub budget: u64,
    /// Algorithm name, with a `tune:` or `session:` prefix so one-shot
    /// and incremental campaigns (different code paths) never cross-serve.
    pub algo: String,
}

/// One completed campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The campaign's key.
    pub key: CacheKey,
    /// Recommended configuration.
    pub best: Vec<i64>,
    /// Measured objective value of `best`.
    pub best_value: f64,
    /// Coupled runs consumed.
    pub runs_used: u64,
    /// Component solo runs consumed.
    pub component_runs: u64,
    /// Measured coupled `(config, value)` samples, for surrogate refits.
    pub samples: Vec<(Vec<i64>, f64)>,
}

#[derive(Serialize, Deserialize)]
struct CacheFile {
    checksum: String,
    entries: Vec<CacheEntry>,
}

/// Stable fingerprint of a [`Platform`](ceal_sim::Platform): results
/// measured on one machine model must never answer queries about another.
pub fn platform_fingerprint(p: &ceal_sim::Platform) -> String {
    // Debug-format every field, then hash; adding a Platform field changes
    // the fingerprint automatically.
    let repr = format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        p.total_nodes,
        p.cores_per_node,
        p.link_bandwidth,
        p.fabric_bandwidth,
        p.net_latency,
        p.chunk_overhead,
        p.fs_bandwidth,
        p.fs_per_proc_bandwidth,
        p.fs_open_overhead,
        p.mem_bw_share,
        p.staging_interference,
    );
    format!("{:016x}", fnv64(repr.as_bytes()))
}

fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A thread-safe cache of completed campaigns, optionally persisted.
pub struct AutotuneCache {
    entries: Mutex<Vec<CacheEntry>>,
    path: Option<PathBuf>,
    /// Bumped under the `entries` lock on every mutation; each snapshot
    /// carries its generation so persistence can tell which is newest.
    generation: Mutex<u64>,
    /// Highest generation already durably renamed into place. Writers
    /// carrying an older snapshot skip the write instead of clobbering a
    /// newer file (the lost-update race this field exists to close).
    persisted: Mutex<u64>,
}

impl AutotuneCache {
    /// An in-memory cache (nothing persisted).
    pub fn in_memory() -> Self {
        Self {
            entries: Mutex::new(Vec::new()),
            path: None,
            generation: Mutex::new(0),
            persisted: Mutex::new(0),
        }
    }

    /// A cache persisted at `path`, warm-loaded from it when the file
    /// exists and its checksum validates. A missing or corrupt file yields
    /// an empty cache, never an error — serving must start regardless.
    /// Stale `*.tmp.*` files from puts that crashed before their rename
    /// are swept here.
    pub fn at_path(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        Self::sweep_stale_tmp(&path);
        let entries = Self::load(&path).unwrap_or_default();
        Self {
            entries: Mutex::new(entries),
            path: Some(path),
            generation: Mutex::new(0),
            persisted: Mutex::new(0),
        }
    }

    fn load(path: &Path) -> Option<Vec<CacheEntry>> {
        let text = std::fs::read_to_string(path).ok()?;
        let file: CacheFile = serde_json::from_str(&text).ok()?;
        let expect = Self::checksum(&file.entries)?;
        if expect == file.checksum {
            Some(file.entries)
        } else {
            None
        }
    }

    fn checksum(entries: &[CacheEntry]) -> Option<String> {
        let json = serde_json::to_string(&entries.to_vec()).ok()?;
        Some(format!("{:016x}", fnv64(json.as_bytes())))
    }

    /// Number of cached campaigns.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache holds no campaigns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a campaign by key.
    pub fn get(&self, key: &CacheKey) -> Option<CacheEntry> {
        self.entries.lock().iter().find(|e| &e.key == key).cloned()
    }

    /// Inserts (or replaces) a campaign and persists the cache when a path
    /// is configured. Persistence failures are reported but don't fail the
    /// insert — the in-memory cache stays authoritative for this process.
    ///
    /// Concurrent puts are safe: each snapshot is taken together with a
    /// generation number under the entries lock, writers persist one at a
    /// time through a unique temp file, and a writer holding a stale
    /// snapshot yields to the newer one already on disk instead of
    /// renaming over it.
    pub fn put(&self, entry: CacheEntry) -> std::io::Result<()> {
        let (snapshot, gen) = {
            let mut entries = self.entries.lock();
            entries.retain(|e| e.key != entry.key);
            entries.push(entry);
            let mut generation = self.generation.lock();
            *generation += 1;
            (entries.clone(), *generation)
        };
        let Some(path) = &self.path else {
            return Ok(());
        };
        let checksum = Self::checksum(&snapshot)
            .ok_or_else(|| std::io::Error::other("cache serialization failed"))?;
        let file = CacheFile {
            checksum,
            entries: snapshot,
        };
        let json = serde_json::to_string_pretty(&file).map_err(std::io::Error::other)?;
        // One writer at a time; the lock also orders the generation check
        // against the rename it guards.
        let mut persisted = self.persisted.lock();
        if *persisted >= gen {
            // A newer snapshot already reached disk; writing this one
            // would resurrect a state missing someone's committed entry.
            return Ok(());
        }
        // Write-then-rename so a crash mid-write can't corrupt the cache:
        // a torn temp file simply fails checksum validation next load. The
        // temp name embeds the generation, so even an out-of-band writer
        // (or a crashed run's leftover) can't be half-overwritten.
        let tmp = path.with_extension(format!("tmp.{gen}"));
        let result = (|| {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            // Durable before visible: rename must never expose a file
            // whose bytes could still be lost by a crash.
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = result {
            // Don't strand a generation-named temp file on failure.
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        // The rename is visible now even if the directory fsync below
        // fails, so record it before anything else can error — otherwise a
        // writer with an older snapshot would pass the staleness check and
        // rename over this newer file.
        *persisted = gen;
        // The rename itself lives in the directory; fsync it so a crash
        // can't roll the cache back to the previous generation.
        std::fs::File::open(Self::parent_dir(path))?.sync_all()?;
        Ok(())
    }

    /// The directory holding `path`, with a bare filename mapping to `.`.
    fn parent_dir(path: &Path) -> &Path {
        match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        }
    }

    /// Removes `<stem>.tmp.*` leftovers from puts that died between
    /// temp-file creation and rename.
    fn sweep_stale_tmp(path: &Path) {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            return;
        };
        let prefix = format!("{stem}.tmp.");
        let Ok(dir) = std::fs::read_dir(Self::parent_dir(path)) else {
            return;
        };
        for entry in dir.flatten() {
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix))
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            workflow: "LV".into(),
            platform: platform_fingerprint(&ceal_sim::Platform::default()),
            objective: "comp".into(),
            pool: 500,
            seed,
            budget: 25,
            algo: "tune:ceal".into(),
        }
    }

    fn entry(seed: u64) -> CacheEntry {
        CacheEntry {
            key: key(seed),
            best: vec![18, 18, 2, 18, 18, 2],
            best_value: 1.5,
            runs_used: 25,
            component_runs: 12,
            samples: vec![(vec![18, 18, 2, 18, 18, 2], 1.5)],
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        ceal_testutil::unique_temp_path(&format!("ceal-cache-{tag}"), "json")
    }

    #[test]
    fn get_put_round_trip_in_memory() {
        let cache = AutotuneCache::in_memory();
        assert!(cache.get(&key(1)).is_none());
        cache.put(entry(1)).unwrap();
        assert_eq!(cache.get(&key(1)).unwrap(), entry(1));
        assert!(cache.get(&key(2)).is_none());
        // Replacement keeps one entry per key.
        cache.put(entry(1)).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn persists_and_reloads_with_valid_checksum() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let cache = AutotuneCache::at_path(&path);
            cache.put(entry(7)).unwrap();
        }
        let warm = AutotuneCache::at_path(&path);
        assert_eq!(warm.get(&key(7)).unwrap(), entry(7));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_file_is_ignored() {
        let path = temp_path("corrupt");
        {
            let cache = AutotuneCache::at_path(&path);
            cache.put(entry(3)).unwrap();
        }
        // Flip a byte inside the payload: checksum must catch it.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("\"best_value\": 1.5", "\"best_value\": 9.5");
        std::fs::write(&path, text).unwrap();
        let reloaded = AutotuneCache::at_path(&path);
        assert!(reloaded.is_empty(), "tampered cache must not load");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_tmp_files_are_swept_on_load() {
        let path = temp_path("sweep");
        let stale = path.with_extension("tmp.3");
        std::fs::write(&stale, "torn write from a crashed put").unwrap();
        {
            let cache = AutotuneCache::at_path(&path);
            assert!(!stale.exists(), "startup must sweep crash leftovers");
            cache.put(entry(4)).unwrap();
        }
        assert!(AutotuneCache::at_path(&path).get(&key(4)).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_put_leaves_no_tmp_file_behind() {
        let path = temp_path("putfail");
        // A directory at the cache path makes the rename step fail.
        std::fs::create_dir(&path).unwrap();
        let cache = AutotuneCache::in_memory();
        let cache = AutotuneCache {
            path: Some(path.clone()),
            ..cache
        };
        assert!(cache.put(entry(5)).is_err());
        assert!(
            !path.with_extension("tmp.1").exists(),
            "failed put must remove its temp file"
        );
        let _ = std::fs::remove_dir(&path);
    }

    #[test]
    fn different_platforms_have_different_fingerprints() {
        let a = ceal_sim::Platform::default();
        let mut b = ceal_sim::Platform::default();
        b.cores_per_node += 1;
        assert_ne!(platform_fingerprint(&a), platform_fingerprint(&b));
    }
}
