//! Equivalence of histogram-based split finding against the exact-greedy
//! reference.
//!
//! With at least as many bins as distinct feature values, the binned
//! candidate-split set equals the exact one, so on integer-valued data
//! (where gradient/hessian sums are exact in f64) training-row predictions
//! are bit-identical. With fewer bins the splits are quantile-approximate
//! and only accuracy is guaranteed.

use ceal_ml::{BinnedDataset, Dataset, GbtParams, GradientBoosting, Regressor};
use ceal_ml::{RegressionTree, TreeParams, DEFAULT_MAX_BINS};

/// Deterministic integer-valued dataset: sums of `g = -y`, `h = 1` are
/// exact in f64, so binned and exact trees agree bit-for-bit.
fn integer_dataset(n: usize, p: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<f64> = (0..p).map(|j| ((i * 31 + j * 17) % 13) as f64).collect();
        let y: f64 = row
            .iter()
            .enumerate()
            .map(|(j, v)| (j + 1) as f64 * v)
            .sum();
        rows.push(row);
        ys.push(y);
    }
    Dataset::from_rows(&rows, &ys)
}

/// Continuous dataset (fractional values) for tolerance-based checks.
fn continuous_dataset(n: usize, p: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<f64> = (0..p)
            .map(|j| ((i * 31 + j * 17) % 97) as f64 / 97.0)
            .collect();
        let y: f64 = row
            .iter()
            .enumerate()
            .map(|(j, v)| (j + 1) as f64 * v * v)
            .sum();
        rows.push(row);
        ys.push(y);
    }
    Dataset::from_rows(&rows, &ys)
}

#[test]
fn single_tree_bit_identical_on_integer_data() {
    let data = integer_dataset(120, 4);
    let grad: Vec<f64> = data.targets().iter().map(|y| -y).collect();
    let hess = vec![1.0; data.n_rows()];
    let rows: Vec<usize> = (0..data.n_rows()).collect();
    let feats: Vec<usize> = (0..data.n_features()).collect();
    for max_depth in [1, 3, 6] {
        let params = TreeParams {
            max_depth,
            ..Default::default()
        };
        let exact = RegressionTree::fit_gradients_exact(&data, &grad, &hess, &rows, &feats, params);
        let binned = RegressionTree::fit_gradients(&data, &grad, &hess, &rows, &feats, params);
        assert_eq!(exact.n_leaves(), binned.n_leaves(), "depth {max_depth}");
        assert_eq!(exact.depth(), binned.depth(), "depth {max_depth}");
        for i in 0..data.n_rows() {
            let row = data.row(i);
            assert_eq!(
                exact.predict_row(row),
                binned.predict_row(row),
                "depth {max_depth}, training row {i} differs"
            );
        }
    }
}

#[test]
fn single_tree_bit_identical_on_row_subsets() {
    // Node-level sums run over subsets; exercise the partition paths too.
    let data = integer_dataset(90, 3);
    let grad: Vec<f64> = data.targets().iter().map(|y| -y).collect();
    let hess = vec![1.0; data.n_rows()];
    let rows: Vec<usize> = (0..data.n_rows()).filter(|i| i % 3 != 0).collect();
    let feats = [0usize, 2];
    let params = TreeParams {
        max_depth: 5,
        min_samples_leaf: 2,
        ..Default::default()
    };
    let exact = RegressionTree::fit_gradients_exact(&data, &grad, &hess, &rows, &feats, params);
    let binned = RegressionTree::fit_gradients(&data, &grad, &hess, &rows, &feats, params);
    for &i in &rows {
        assert_eq!(
            exact.predict_row(data.row(i)),
            binned.predict_row(data.row(i))
        );
    }
}

#[test]
fn boosting_matches_exact_reference_within_tolerance() {
    // Replicate the boosting loop with exact-greedy trees and compare the
    // production (binned) GradientBoosting against it. Gradients become
    // fractional after round one, so sums may differ in the last ulp — the
    // comparison is tight-tolerance, not bitwise.
    let data = continuous_dataset(200, 5);
    let params = GbtParams {
        n_rounds: 40,
        learning_rate: 0.1,
        subsample: 1.0,
        colsample: 1.0,
        ..Default::default()
    };

    let n = data.n_rows();
    let base = data.target_mean();
    let mut pred = vec![base; n];
    let mut grad = vec![0.0; n];
    let hess = vec![1.0; n];
    let rows: Vec<usize> = (0..n).collect();
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let mut exact_trees = Vec::new();
    for _ in 0..params.n_rounds {
        for ((g, p), y) in grad.iter_mut().zip(&pred).zip(data.targets()) {
            *g = p - y;
        }
        let tree =
            RegressionTree::fit_gradients_exact(&data, &grad, &hess, &rows, &feats, params.tree);
        for (i, p) in pred.iter_mut().enumerate() {
            *p += params.learning_rate * tree.predict_row(data.row(i));
        }
        exact_trees.push(tree);
    }

    let mut gbt = GradientBoosting::new(params);
    gbt.fit(&data);
    let got = gbt.predict_batch(&data);
    for (i, &g) in got.iter().enumerate() {
        let want: f64 = base
            + params.learning_rate
                * exact_trees
                    .iter()
                    .map(|t| t.predict_row(data.row(i)))
                    .sum::<f64>();
        let tol = 1e-9 * want.abs().max(1.0);
        assert!(
            (g - want).abs() <= tol,
            "row {i}: binned {g} vs exact {want}"
        );
    }
}

#[test]
fn coarse_bins_stay_accurate() {
    // Far fewer bins than distinct values: splits are quantile-approximate
    // but the tree must still explain most of the variance the exact tree
    // does.
    let data = continuous_dataset(300, 4);
    let grad: Vec<f64> = data.targets().iter().map(|y| -y).collect();
    let hess = vec![1.0; data.n_rows()];
    let rows: Vec<usize> = (0..data.n_rows()).collect();
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let params = TreeParams {
        max_depth: 5,
        lambda: 0.0,
        ..Default::default()
    };

    let sse = |tree: &RegressionTree| -> f64 {
        (0..data.n_rows())
            .map(|i| {
                let e = tree.predict_row(data.row(i)) - data.target(i);
                e * e
            })
            .sum()
    };
    let exact = RegressionTree::fit_gradients_exact(&data, &grad, &hess, &rows, &feats, params);
    let coarse = BinnedDataset::from_dataset(&data, 16);
    assert!(coarse.n_bins(0) <= 16);
    let binned = RegressionTree::fit_binned(&coarse, &grad, &hess, &rows, &feats, params);
    let (e_exact, e_binned) = (sse(&exact), sse(&binned));
    assert!(
        e_binned <= e_exact * 1.5 + 1e-9,
        "coarse-binned SSE {e_binned} much worse than exact {e_exact}"
    );
}

#[test]
fn default_bins_cover_small_distinct_counts() {
    // Auto-tuning pools have few distinct parameter levels; the default
    // budget must keep one bin per distinct value there.
    let data = integer_dataset(500, 3);
    let binned = BinnedDataset::from_dataset(&data, DEFAULT_MAX_BINS);
    for f in 0..data.n_features() {
        assert_eq!(binned.n_bins(f), 13, "feature {f} has 13 distinct levels");
    }
}
