//! Property-based tests of the ML substrate.

use ceal_ml::{
    cv, metrics, Dataset, GbtParams, GradientBoosting, KnnRegressor, RandomForest,
    RandomForestParams, RegressionTree, Regressor, Ridge, TreeParams,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    prop::collection::vec((0.0f64..10.0, 0.0f64..10.0, -50.0f64..50.0), 3..60).prop_map(|rows| {
        let xs: Vec<Vec<f64>> = rows.iter().map(|(a, b, _)| vec![*a, *b]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|(a, b, n)| a * 3.0 + b + n * 0.01)
            .collect();
        Dataset::from_rows(&xs, &ys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A single regression tree's predictions lie within the target range
    /// when fit directly to targets (mean leaves cannot extrapolate).
    #[test]
    fn tree_predictions_within_target_hull(data in dataset_strategy(), probe_a in 0.0f64..10.0, probe_b in 0.0f64..10.0) {
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let tree = RegressionTree::fit_targets(&data, &rows, &[0, 1], TreeParams::default());
        let lo = data.targets().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.targets().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = tree.predict_row(&[probe_a, probe_b]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} escapes [{lo}, {hi}]");
    }

    /// Tree depth never exceeds the configured cap.
    #[test]
    fn tree_depth_capped(data in dataset_strategy(), depth in 0usize..6) {
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let params = TreeParams { max_depth: depth, ..Default::default() };
        let tree = RegressionTree::fit_targets(&data, &rows, &[0, 1], params);
        prop_assert!(tree.depth() <= depth);
        prop_assert!(tree.n_leaves() <= 1 << depth);
    }

    /// GBT training error is no worse than predicting the mean.
    #[test]
    fn gbt_no_worse_than_mean(data in dataset_strategy()) {
        let mut model = GradientBoosting::new(GbtParams { n_rounds: 30, ..Default::default() });
        model.fit(&data);
        let preds = model.predict_batch(&data);
        let mean = data.target_mean();
        let mean_preds = vec![mean; data.n_rows()];
        let model_err = metrics::mse(data.targets(), &preds);
        let mean_err = metrics::mse(data.targets(), &mean_preds);
        prop_assert!(model_err <= mean_err + 1e-9, "{model_err} > {mean_err}");
    }

    /// All four regressors produce finite predictions anywhere in range.
    #[test]
    fn regressors_are_finite(data in dataset_strategy(), a in -5.0f64..15.0, b in -5.0f64..15.0) {
        let models: Vec<Box<dyn Regressor>> = vec![
            Box::new(GradientBoosting::new(GbtParams { n_rounds: 10, ..Default::default() })),
            Box::new(RandomForest::new(RandomForestParams { n_trees: 5, ..Default::default() })),
            Box::new(KnnRegressor::new(3)),
            Box::new(Ridge::new(1.0)),
        ];
        for mut m in models {
            m.fit(&data);
            prop_assert!(m.is_fitted());
            let p = m.predict_row(&[a, b]);
            prop_assert!(p.is_finite(), "non-finite prediction {p}");
        }
    }

    /// k-fold indices partition the rows for any k.
    #[test]
    fn kfold_partitions(n in 1usize..200, k in 1usize..12, seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let folds = cv::kfold_indices(n, k, &mut rng);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        // Fold sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);
    }

    /// Spearman correlation is bounded and symmetric.
    #[test]
    fn spearman_bounded_symmetric(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)) {
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let s = metrics::spearman(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        prop_assert!((s - metrics::spearman(&b, &a)).abs() < 1e-12);
    }

    /// Bootstrap samples only contain existing rows.
    #[test]
    fn bootstrap_draws_existing_rows(data in dataset_strategy(), n in 1usize..100, seed in 0u64..50) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let b = data.bootstrap(n, &mut rng);
        prop_assert_eq!(b.n_rows(), n);
        for i in 0..b.n_rows() {
            let found = (0..data.n_rows()).any(|j| data.row(j) == b.row(i));
            prop_assert!(found, "bootstrap invented a row");
        }
    }
}
