//! Worker-count invariance: fit and predict results must be bit-identical
//! for 1 worker, 2 workers, and the machine's available parallelism.
//!
//! The histogram builder accumulates each feature serially in row order and
//! `ceal_par::parallel_map` returns results in input order, so thread count
//! must never change a single bit of any model output. `CEAL_THREADS` is
//! process-global, so everything lives in one `#[test]` to avoid races.

use ceal_ml::{Dataset, GbtParams, GradientBoosting, RandomForest, RandomForestParams, Regressor};

fn dataset(n: usize, p: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<f64> = (0..p)
            .map(|j| ((i * 31 + j * 17) % 97) as f64 / 97.0)
            .collect();
        let y: f64 = row
            .iter()
            .enumerate()
            .map(|(j, v)| (j + 1) as f64 * v * v)
            .sum();
        rows.push(row);
        ys.push(y);
    }
    Dataset::from_rows(&rows, &ys)
}

fn fit_predict(train: &Dataset, probe: &Dataset) -> (Vec<f64>, Vec<f64>) {
    let mut gbt = GradientBoosting::new(GbtParams {
        n_rounds: 25,
        subsample: 0.8,
        colsample: 0.8,
        seed: 7,
        ..Default::default()
    });
    gbt.fit(train);
    let mut rf = RandomForest::new(RandomForestParams {
        n_trees: 25,
        seed: 7,
        ..Default::default()
    });
    rf.fit(train);
    (gbt.predict_batch(probe), rf.predict_batch(probe))
}

#[test]
fn results_bit_identical_across_worker_counts() {
    let train = dataset(400, 6);
    // Large enough that batch prediction crosses the parallel threshold.
    let probe = dataset(20_000, 6);

    std::env::set_var("CEAL_THREADS", "1");
    let (gbt_1, rf_1) = fit_predict(&train, &probe);

    std::env::set_var("CEAL_THREADS", "2");
    let (gbt_2, rf_2) = fit_predict(&train, &probe);

    std::env::remove_var("CEAL_THREADS");
    let threads = ceal_par::available_threads();
    let (gbt_n, rf_n) = fit_predict(&train, &probe);

    assert_eq!(gbt_1, gbt_2, "GBT differs between 1 and 2 workers");
    assert_eq!(gbt_1, gbt_n, "GBT differs between 1 and {threads} workers");
    assert_eq!(rf_1, rf_2, "forest differs between 1 and 2 workers");
    assert_eq!(rf_1, rf_n, "forest differs between 1 and {threads} workers");

    // Row-at-a-time prediction agrees with the batched path bit-for-bit.
    std::env::set_var("CEAL_THREADS", "2");
    let mut gbt = GradientBoosting::new(GbtParams {
        n_rounds: 25,
        subsample: 0.8,
        colsample: 0.8,
        seed: 7,
        ..Default::default()
    });
    gbt.fit(&train);
    for i in (0..probe.n_rows()).step_by(997) {
        assert_eq!(gbt.predict_row(probe.row(i)), gbt_1[i], "row {i}");
    }
    std::env::remove_var("CEAL_THREADS");
}
