//! k-fold cross-validation over any [`Regressor`].
//!
//! Used by the tests to sanity-check surrogate quality and by the Didona
//! KNN-ensemble ablation, which needs held-out accuracy estimates per model.

use crate::dataset::Dataset;
use crate::metrics;
use crate::Regressor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Per-fold and aggregate scores from a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvReport {
    /// RMSE per fold.
    pub fold_rmse: Vec<f64>,
    /// MdAPE (percent) per fold.
    pub fold_mdape: Vec<f64>,
}

impl CvReport {
    /// Mean RMSE across folds.
    pub fn mean_rmse(&self) -> f64 {
        mean(&self.fold_rmse)
    }

    /// Mean MdAPE across folds.
    pub fn mean_mdape(&self) -> f64 {
        mean(&self.fold_mdape)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Splits `n` row indices into `k` shuffled folds of near-equal size.
pub fn kfold_indices<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<Vec<usize>> {
    let k = k.clamp(1, n.max(1));
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, i) in idx.into_iter().enumerate() {
        folds[pos % k].push(i);
    }
    folds
}

/// Runs k-fold cross-validation of `make_model` on `data`.
///
/// `make_model` constructs a fresh model per fold so no state leaks across
/// folds.
pub fn cross_validate<R: Rng, M: Regressor, F: Fn() -> M>(
    data: &Dataset,
    k: usize,
    rng: &mut R,
    make_model: F,
) -> CvReport {
    let folds = kfold_indices(data.n_rows(), k, rng);
    let mut report = CvReport {
        fold_rmse: Vec::new(),
        fold_mdape: Vec::new(),
    };
    for held_out in 0..folds.len() {
        let test_idx = &folds[held_out];
        if test_idx.is_empty() {
            continue;
        }
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != held_out)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        if train_idx.is_empty() {
            continue;
        }
        let train = data.select(&train_idx);
        let test = data.select(test_idx);
        let mut model = make_model();
        model.fit(&train);
        let preds = model.predict_batch(&test);
        report.fold_rmse.push(metrics::rmse(test.targets(), &preds));
        report
            .fold_mdape
            .push(metrics::mdape(test.targets(), &preds));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbt::{GbtParams, GradientBoosting};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn data() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 12) as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] * 3.0 + 1.0).collect();
        Dataset::from_rows(&rows, &ys)
    }

    #[test]
    fn folds_partition_all_indices() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let folds = kfold_indices(25, 4, &mut rng);
        assert_eq!(folds.len(), 4);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..25).collect::<Vec<_>>());
        for f in &folds {
            assert!(f.len() == 6 || f.len() == 7);
        }
    }

    #[test]
    fn k_clamped_to_row_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let folds = kfold_indices(3, 10, &mut rng);
        assert_eq!(folds.len(), 3);
    }

    #[test]
    fn cross_validation_scores_easy_function() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let report = cross_validate(&data(), 5, &mut rng, || {
            GradientBoosting::new(GbtParams {
                n_rounds: 60,
                ..Default::default()
            })
        });
        assert_eq!(report.fold_rmse.len(), 5);
        assert!(report.mean_rmse() < 2.0, "rmse {}", report.mean_rmse());
        assert!(report.mean_mdape() < 25.0, "mdape {}", report.mean_mdape());
    }

    #[test]
    fn empty_report_means_are_zero() {
        let r = CvReport {
            fold_rmse: vec![],
            fold_mdape: vec![],
        };
        assert_eq!(r.mean_rmse(), 0.0);
        assert_eq!(r.mean_mdape(), 0.0);
    }
}
