//! Gradient-boosted regression trees (XGBoost-style).
//!
//! Squared-error objective: per round, gradients are `g_i = ŷ_i − y_i`,
//! hessians `h_i = 1`; a [`RegressionTree`] is fit to them and its
//! predictions are added with shrinkage `learning_rate`. Row subsampling and
//! per-tree column subsampling provide stochastic regularization, matching
//! the `xgboost.XGBRegressor` defaults the paper tunes with.

use crate::binned::{BinnedDataset, DEFAULT_MAX_BINS};
use crate::dataset::Dataset;
use crate::flat::FlatTrees;
use crate::tree::{RegressionTree, TreeParams};
use crate::Regressor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hyperparameters for [`GradientBoosting`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbtParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Tree growth parameters.
    pub tree: TreeParams,
    /// Fraction of rows sampled (without replacement) per round, in (0, 1].
    pub subsample: f64,
    /// Fraction of features sampled per tree, in (0, 1].
    pub colsample: f64,
    /// RNG seed for the row/column subsampling.
    pub seed: u64,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            n_rounds: 100,
            learning_rate: 0.1,
            tree: TreeParams::default(),
            subsample: 1.0,
            colsample: 1.0,
            seed: 0,
        }
    }
}

impl GbtParams {
    /// A configuration suited to very small training sets (tens of samples),
    /// as encountered inside the auto-tuner: shallower trees, stronger
    /// shrinkage, mild row subsampling.
    pub fn small_sample(seed: u64) -> Self {
        Self {
            n_rounds: 200,
            learning_rate: 0.08,
            tree: TreeParams {
                max_depth: 3,
                min_child_weight: 1.0,
                lambda: 1.0,
                gamma: 0.0,
                min_samples_leaf: 1,
            },
            subsample: 0.9,
            colsample: 1.0,
            seed,
        }
    }
}

/// A fitted gradient-boosting model.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    params: GbtParams,
    base_score: f64,
    trees: Vec<RegressionTree>,
    /// SoA mirror of `trees`, rebuilt at the end of `fit`; prediction
    /// walks this, never the enum nodes.
    flat: FlatTrees,
}

impl GradientBoosting {
    /// Creates an unfitted model with the given hyperparameters.
    pub fn new(params: GbtParams) -> Self {
        Self {
            params,
            base_score: 0.0,
            trees: Vec::new(),
            flat: FlatTrees::default(),
        }
    }

    /// The hyperparameters this model was constructed with.
    pub fn params(&self) -> &GbtParams {
        &self.params
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees, in boosting order.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Training RMSE trajectory is monotone under full-batch fitting; this
    /// returns the final training predictions for diagnostics.
    pub fn training_predictions(&self, data: &Dataset) -> Vec<f64> {
        self.predict_batch(data)
    }

    /// Gain-based feature importance over `n_features` features, normalized
    /// to sum to 1 (all zeros for an unfitted or split-free model).
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        let mut gains = vec![0.0; n_features];
        for tree in &self.trees {
            for (acc, g) in gains.iter_mut().zip(tree.feature_gains(n_features)) {
                *acc += g;
            }
        }
        let total: f64 = gains.iter().sum();
        if total > 0.0 {
            for g in &mut gains {
                *g /= total;
            }
        }
        gains
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit boosting to an empty dataset");
        self.trees.clear();
        self.base_score = data.target_mean();

        let n = data.n_rows();
        let p = data.n_features();
        let binned = BinnedDataset::from_dataset(data, DEFAULT_MAX_BINS);
        let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed);
        let mut pred = vec![self.base_score; n];
        let mut grad = vec![0.0; n];
        let hess = vec![1.0; n];
        let all_rows: Vec<usize> = (0..n).collect();
        let all_feats: Vec<usize> = (0..p).collect();
        let n_sub = ((n as f64 * self.params.subsample).round() as usize).clamp(1, n);
        let p_sub = ((p as f64 * self.params.colsample).round() as usize).clamp(1, p.max(1));

        for _ in 0..self.params.n_rounds {
            for ((g, p), y) in grad.iter_mut().zip(&pred).zip(data.targets()) {
                *g = p - y;
            }
            let rows: Vec<usize> = if n_sub < n {
                let mut idx = all_rows.clone();
                idx.shuffle(&mut rng);
                idx.truncate(n_sub);
                idx
            } else {
                all_rows.clone()
            };
            let feats: Vec<usize> = if p_sub < p {
                let mut idx = all_feats.clone();
                idx.shuffle(&mut rng);
                idx.truncate(p_sub);
                idx
            } else {
                all_feats.clone()
            };
            let tree =
                RegressionTree::fit_binned(&binned, &grad, &hess, &rows, &feats, self.params.tree);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += self.params.learning_rate * tree.predict_row(data.row(i));
            }
            self.trees.push(tree);
        }
        self.flat = FlatTrees::from_trees(&self.trees);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.base_score + self.params.learning_rate * self.flat.predict_row_sum(row)
    }

    fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        let mut out = self.flat.predict_batch_sum(data);
        for y in &mut out {
            *y = self.base_score + self.params.learning_rate * *y;
        }
        out
    }

    fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2, rmse};

    fn synthetic(n: usize) -> Dataset {
        // y = 3*x0 + x1^2 - 2*x0*x1, deterministic grid.
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let x0 = (i % 17) as f64 / 17.0;
            let x1 = (i % 31) as f64 / 31.0;
            rows.push(vec![x0, x1]);
            ys.push(3.0 * x0 + x1 * x1 - 2.0 * x0 * x1);
        }
        Dataset::from_rows(&rows, &ys)
    }

    #[test]
    fn fits_nonlinear_function_well() {
        let data = synthetic(400);
        let mut model = GradientBoosting::new(GbtParams::default());
        model.fit(&data);
        let preds = model.predict_batch(&data);
        assert!(r2(data.targets(), &preds) > 0.98, "R² too low");
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let data = synthetic(300);
        let mut few = GradientBoosting::new(GbtParams {
            n_rounds: 5,
            ..Default::default()
        });
        let mut many = GradientBoosting::new(GbtParams {
            n_rounds: 150,
            ..Default::default()
        });
        few.fit(&data);
        many.fit(&data);
        let e_few = rmse(data.targets(), &few.predict_batch(&data));
        let e_many = rmse(data.targets(), &many.predict_batch(&data));
        assert!(
            e_many < e_few,
            "boosting failed to improve: {e_many} !< {e_few}"
        );
    }

    #[test]
    fn zero_rounds_predicts_target_mean() {
        let data = synthetic(50);
        let mut model = GradientBoosting::new(GbtParams {
            n_rounds: 0,
            ..Default::default()
        });
        model.fit(&data);
        assert!(!model.is_fitted());
        assert!((model.predict_row(&[0.3, 0.3]) - data.target_mean()).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = synthetic(120);
        let params = GbtParams {
            subsample: 0.7,
            seed: 42,
            ..Default::default()
        };
        let mut a = GradientBoosting::new(params);
        let mut b = GradientBoosting::new(params);
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict_batch(&data), b.predict_batch(&data));
    }

    #[test]
    fn different_seeds_differ_under_subsampling() {
        let data = synthetic(120);
        let mut a = GradientBoosting::new(GbtParams {
            subsample: 0.5,
            seed: 1,
            ..Default::default()
        });
        let mut b = GradientBoosting::new(GbtParams {
            subsample: 0.5,
            seed: 2,
            ..Default::default()
        });
        a.fit(&data);
        b.fit(&data);
        assert_ne!(a.predict_batch(&data), b.predict_batch(&data));
    }

    #[test]
    fn handles_single_row() {
        let data = Dataset::from_rows(&[vec![1.0, 2.0]], &[5.0]);
        let mut model = GradientBoosting::new(GbtParams::small_sample(0));
        model.fit(&data);
        assert!((model.predict_row(&[1.0, 2.0]) - 5.0).abs() < 0.5);
    }

    #[test]
    fn feature_importance_identifies_the_signal() {
        // y depends only on x0; x1 is constant noise.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64, 0.5]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] * r[0]).collect();
        let data = Dataset::from_rows(&rows, &ys);
        let mut model = GradientBoosting::new(GbtParams::default());
        model.fit(&data);
        let imp = model.feature_importance(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.99, "x0 should carry the importance: {imp:?}");
    }

    #[test]
    fn unfitted_importance_is_zero() {
        let model = GradientBoosting::new(GbtParams::default());
        assert_eq!(model.feature_importance(3), vec![0.0; 3]);
    }

    #[test]
    fn refit_replaces_previous_model() {
        let data1 = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[0.0, 0.0]);
        let data2 = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[100.0, 100.0]);
        let mut model = GradientBoosting::new(GbtParams::default());
        model.fit(&data1);
        model.fit(&data2);
        assert!(model.predict_row(&[0.5]) > 50.0);
    }
}
