//! Histogram-based (quantile-binned) split finding.
//!
//! [`BinnedDataset`] quantizes every feature column once per `fit` into at
//! most `max_bins` ordered bins (one bin per distinct value when the column
//! has few, quantile cuts otherwise). Trees are then grown from per-bin
//! gradient/hessian histograms instead of per-node sorts, so one tree level
//! costs O(rows + bins·features) rather than O(rows·log rows·features), and
//! the binning itself is paid once per model fit instead of once per node.
//!
//! Two further tricks keep the constant small:
//!
//! * **Histogram subtraction** — after a split, only the smaller child's
//!   histograms are accumulated from rows; the sibling's are derived as
//!   `parent − child`, halving accumulation work per level.
//! * **Parallel per-feature builds** — each feature's histogram is an
//!   independent scan, fanned out over [`ceal_par::parallel_map`] when the
//!   node is large enough to amortize thread spawns. Each feature is
//!   accumulated serially in row order regardless of worker count, so
//!   results are bit-identical for any `CEAL_THREADS`.
//!
//! With at least as many bins as distinct feature values the candidate
//! split set matches exact greedy enumeration
//! ([`RegressionTree::fit_gradients_exact`]); with fewer bins splits are
//! quantile-approximate — the same trade XGBoost's `hist` method makes
//! (Chen & Guestrin, KDD '16).

use crate::dataset::Dataset;
use crate::tree::{Node, RegressionTree, TreeParams};

/// Default bin budget per feature. Auto-tuning datasets (tens to hundreds
/// of rows) have fewer distinct values than this, so the default keeps
/// training exactly equivalent to the greedy reference while large
/// benchmark datasets fall back to quantile cuts.
pub const DEFAULT_MAX_BINS: usize = 256;

/// Minimum rows × features product before per-feature work fans out over
/// the thread pool; below it, spawning threads costs more than the scan.
const PAR_WORK_THRESHOLD: usize = 1 << 20;

/// One feature column quantized to ordered bin codes.
struct FeatureBins {
    codes: Vec<u16>,
    /// Raw-value thresholds between adjacent bins: a row belongs to a bin
    /// `<= b` iff its value is `<= cuts[b]`. Length `n_bins - 1`.
    cuts: Vec<f64>,
}

/// Quantizes one column. NaNs go to bin 0 (mirroring the NaN-routes-left
/// convention of prediction) and never produce cut points.
fn bin_column(vals: &[f64], max_bins: usize) -> FeatureBins {
    let max_bins = max_bins.clamp(2, u16::MAX as usize);
    let mut sorted: Vec<f64> = vals.iter().copied().filter(|v| !v.is_nan()).collect();
    sorted.sort_by(f64::total_cmp);
    sorted.dedup();
    let d = sorted.len();
    if d <= 1 {
        return FeatureBins {
            codes: vec![0; vals.len()],
            cuts: Vec::new(),
        };
    }

    // Boundary ranks into the distinct-value list: bin `b` covers ranks
    // `bounds[b-1]..bounds[b]`. One bin per distinct value when they fit,
    // evenly spaced quantile cuts otherwise (strictly increasing because
    // d >= max_bins there).
    let bounds: Vec<usize> = if d <= max_bins {
        (1..d).collect()
    } else {
        (1..max_bins).map(|k| k * d / max_bins).collect()
    };
    let cuts: Vec<f64> = bounds
        .iter()
        .map(|&i| 0.5 * (sorted[i - 1] + sorted[i]))
        .collect();

    // code(rank) = number of boundaries at or below the rank.
    let mut code_of_rank = vec![0u16; d];
    let mut code = 0u16;
    let mut b = 0;
    for (r, slot) in code_of_rank.iter_mut().enumerate() {
        if b < bounds.len() && bounds[b] == r {
            code += 1;
            b += 1;
        }
        *slot = code;
    }
    let codes = vals
        .iter()
        .map(|&v| {
            if v.is_nan() {
                0
            } else {
                code_of_rank[sorted.partition_point(|&x| x < v)]
            }
        })
        .collect();
    FeatureBins { codes, cuts }
}

/// A dataset's feature matrix quantized once into column-major bin codes,
/// cached for the duration of a model fit and shared by every tree.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    n_rows: usize,
    n_features: usize,
    /// Column-major codes: `codes[f * n_rows + i]` is row `i`'s bin in
    /// feature `f`.
    codes: Vec<u16>,
    /// Per-feature inter-bin thresholds (see [`FeatureBins::cuts`]).
    cuts: Vec<Vec<f64>>,
}

impl BinnedDataset {
    /// Quantizes `data` with at most `max_bins` bins per feature.
    pub fn from_dataset(data: &Dataset, max_bins: usize) -> Self {
        let n = data.n_rows();
        let p = data.n_features();
        assert!(n < u32::MAX as usize, "row count exceeds u32 row indices");
        let feats: Vec<usize> = (0..p).collect();
        let bin_one = |&f: &usize| {
            let col: Vec<f64> = (0..n).map(|i| data.value(i, f)).collect();
            bin_column(&col, max_bins)
        };
        let per_feature: Vec<FeatureBins> = if n * p >= PAR_WORK_THRESHOLD {
            ceal_par::parallel_map(&feats, bin_one)
        } else {
            feats.iter().map(bin_one).collect()
        };
        let mut codes = Vec::with_capacity(n * p);
        let mut cuts = Vec::with_capacity(p);
        for fb in per_feature {
            codes.extend_from_slice(&fb.codes);
            cuts.push(fb.cuts);
        }
        Self {
            n_rows: n,
            n_features: p,
            codes,
            cuts,
        }
    }

    /// Number of rows quantized.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of bins of feature `f` (at least 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.cuts[f].len() + 1
    }

    /// All rows' bin codes for feature `f`.
    fn feature_codes(&self, f: usize) -> &[u16] {
        &self.codes[f * self.n_rows..(f + 1) * self.n_rows]
    }
}

/// Per-bin first/second-order gradient statistics.
#[derive(Debug, Clone, Copy, Default)]
struct HistBin {
    g: f64,
    h: f64,
    n: u32,
}

type FeatHist = Vec<HistBin>;

fn subtract(parent: &[FeatHist], child: &[FeatHist]) -> Vec<FeatHist> {
    parent
        .iter()
        .zip(child)
        .map(|(p, c)| {
            p.iter()
                .zip(c)
                .map(|(pb, cb)| HistBin {
                    g: pb.g - cb.g,
                    h: pb.h - cb.h,
                    n: pb.n - cb.n,
                })
                .collect()
        })
        .collect()
}

struct HistSplit {
    feature: usize,
    bin: u16,
    threshold: f64,
    gain: f64,
}

struct HistGrower<'a> {
    binned: &'a BinnedDataset,
    grad: &'a [f64],
    hess: &'a [f64],
    features: &'a [usize],
    params: TreeParams,
    nodes: Vec<Node>,
    split_gains: Vec<(usize, f64)>,
}

impl HistGrower<'_> {
    fn score(&self, g: f64, h: f64) -> f64 {
        g * g / (h + self.params.lambda)
    }

    /// Accumulates one histogram per considered feature over `rows`.
    /// Deterministic for any worker count: each feature is scanned serially
    /// in row order, and `parallel_map` returns results in input order.
    fn build_hists(&self, rows: &[u32]) -> Vec<FeatHist> {
        let build_one = |&f: &usize| {
            let codes = self.binned.feature_codes(f);
            let mut hist = vec![HistBin::default(); self.binned.n_bins(f)];
            for &i in rows {
                let i = i as usize;
                let b = &mut hist[codes[i] as usize];
                b.g += self.grad[i];
                b.h += self.hess[i];
                b.n += 1;
            }
            hist
        };
        if rows.len() * self.features.len() >= PAR_WORK_THRESHOLD {
            ceal_par::parallel_map(self.features, build_one)
        } else {
            self.features.iter().map(build_one).collect()
        }
    }

    /// Scans the node's histograms for the best boundary, mirroring the
    /// exact grower's candidate order (features in given order, thresholds
    /// ascending) and tie-breaking (strictly greater gain wins).
    fn best_split(&self, hists: &[FeatHist], g: f64, h: f64, n: u32) -> Option<HistSplit> {
        let parent_score = self.score(g, h);
        let mut best: Option<HistSplit> = None;
        for (pos, &f) in self.features.iter().enumerate() {
            let hist = &hists[pos];
            let cuts = &self.binned.cuts[f];
            let mut gl = 0.0;
            let mut hl = 0.0;
            let mut nl = 0u32;
            for (b, &cut) in cuts.iter().enumerate() {
                let bin = hist[b];
                gl += bin.g;
                hl += bin.h;
                nl += bin.n;
                if bin.n == 0 {
                    continue; // same partition as the previous boundary
                }
                let nr = n - nl;
                if nr == 0 {
                    break; // nothing remains on the right
                }
                if (nl as usize) < self.params.min_samples_leaf
                    || (nr as usize) < self.params.min_samples_leaf
                {
                    continue;
                }
                let gr = g - gl;
                let hr = h - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gain = 0.5 * (self.score(gl, hl) + self.score(gr, hr) - parent_score)
                    - self.params.gamma;
                if gain > 0.0 && best.as_ref().is_none_or(|s| gain > s.gain) {
                    best = Some(HistSplit {
                        feature: f,
                        bin: b as u16,
                        threshold: cut,
                        gain,
                    });
                }
            }
        }
        best
    }

    fn grow(&mut self, rows: Vec<u32>, hists: Vec<FeatHist>, depth: usize) -> usize {
        let g: f64 = rows.iter().map(|&i| self.grad[i as usize]).sum();
        let h: f64 = rows.iter().map(|&i| self.hess[i as usize]).sum();

        let split = if depth >= self.params.max_depth || rows.len() < 2 {
            None
        } else {
            self.best_split(&hists, g, h, rows.len() as u32)
        };

        match split {
            None => {
                self.nodes.push(Node::Leaf {
                    weight: -g / (h + self.params.lambda),
                });
                self.nodes.len() - 1
            }
            Some(s) => {
                self.split_gains.push((s.feature, s.gain));
                let codes = self.binned.feature_codes(s.feature);
                let (left_rows, right_rows): (Vec<u32>, Vec<u32>) =
                    rows.into_iter().partition(|&i| codes[i as usize] <= s.bin);
                // Build the smaller child's histograms from its rows and
                // derive the sibling's by subtraction from the parent's.
                let (left_hists, right_hists) = if left_rows.len() <= right_rows.len() {
                    let lh = self.build_hists(&left_rows);
                    let rh = subtract(&hists, &lh);
                    (lh, rh)
                } else {
                    let rh = self.build_hists(&right_rows);
                    let lh = subtract(&hists, &rh);
                    (lh, rh)
                };
                drop(hists);
                // Reserve this node's slot before growing children so child
                // indices are stable.
                let me = self.nodes.len();
                self.nodes.push(Node::Leaf { weight: 0.0 });
                let left = self.grow(left_rows, left_hists, depth + 1);
                let right = self.grow(right_rows, right_hists, depth + 1);
                self.nodes[me] = Node::Split {
                    feature: s.feature,
                    threshold: s.threshold,
                    left,
                    right,
                };
                me
            }
        }
    }
}

impl RegressionTree {
    /// Fits a tree to gradient statistics using histogram-based split
    /// finding over a pre-quantized dataset. This is the hot path used by
    /// [`crate::GradientBoosting`] and [`crate::RandomForest`], which build
    /// the [`BinnedDataset`] once per `fit` and share it across trees.
    ///
    /// # Panics
    /// Panics if `grad`/`hess` are shorter than the binned dataset, or
    /// `rows` is empty.
    pub fn fit_binned(
        binned: &BinnedDataset,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        features: &[usize],
        params: TreeParams,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree to zero rows");
        assert!(grad.len() >= binned.n_rows() && hess.len() >= binned.n_rows());
        let rows32: Vec<u32> = rows.iter().map(|&i| i as u32).collect();
        let mut grower = HistGrower {
            binned,
            grad,
            hess,
            features,
            params,
            nodes: Vec::new(),
            split_gains: Vec::new(),
        };
        let root_hists = grower.build_hists(&rows32);
        grower.grow(rows32, root_hists, 0);
        Self::from_parts(grower.nodes, grower.split_gains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_column_one_bin_per_distinct_value_when_small() {
        let vals = [3.0, 1.0, 2.0, 1.0, 3.0];
        let fb = bin_column(&vals, 256);
        assert_eq!(fb.codes, vec![2, 0, 1, 0, 2]);
        assert_eq!(fb.cuts, vec![1.5, 2.5]);
    }

    #[test]
    fn bin_column_quantile_cuts_when_large() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let fb = bin_column(&vals, 4);
        assert_eq!(fb.cuts.len(), 3);
        // Codes are ordered and respect the cut semantics.
        for (v, &c) in vals.iter().zip(&fb.codes) {
            for (b, &cut) in fb.cuts.iter().enumerate() {
                assert_eq!(c as usize <= b, *v <= cut, "value {v} bin {c} cut {cut}");
            }
        }
    }

    #[test]
    fn bin_column_constant_and_nan() {
        let fb = bin_column(&[5.0, 5.0, 5.0], 8);
        assert_eq!(fb.codes, vec![0, 0, 0]);
        assert!(fb.cuts.is_empty());
        let fb = bin_column(&[f64::NAN, 1.0, 2.0], 8);
        assert_eq!(fb.codes[0], 0);
    }

    #[test]
    fn binned_dataset_shape() {
        let data = Dataset::from_rows(
            &[vec![1.0, 10.0], vec![2.0, 10.0], vec![3.0, 20.0]],
            &[0.0; 3],
        );
        let b = BinnedDataset::from_dataset(&data, 16);
        assert_eq!(b.n_rows(), 3);
        assert_eq!(b.n_features(), 2);
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.n_bins(1), 2);
        assert_eq!(b.feature_codes(1), &[0, 0, 1]);
    }

    #[test]
    fn fit_binned_learns_step_function() {
        let rows_v: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| if i < 5 { 1.0 } else { 9.0 }).collect();
        let data = Dataset::from_rows(&rows_v, &ys);
        let grad: Vec<f64> = ys.iter().map(|y| -y).collect();
        let hess = vec![1.0; 10];
        let binned = BinnedDataset::from_dataset(&data, DEFAULT_MAX_BINS);
        let rows: Vec<usize> = (0..10).collect();
        let params = TreeParams {
            lambda: 0.0,
            ..Default::default()
        };
        let tree = RegressionTree::fit_binned(&binned, &grad, &hess, &rows, &[0], params);
        assert!((tree.predict_row(&[2.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict_row(&[8.0]) - 9.0).abs() < 1e-9);
    }
}
