//! k-nearest-neighbor regression with per-feature min-max normalization.
//!
//! Used by the Didona-style KNN ensemble ablation (paper §8.2), which picks
//! among candidate models based on accuracy over a configuration's nearest
//! measured neighbors, and as an alternative surrogate in ablation benches.

use crate::dataset::Dataset;
use crate::Regressor;

/// A k-NN regressor (inverse-distance-weighted mean of the k nearest
/// training targets, Euclidean distance over min-max-normalized features).
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    data: Dataset,
    ranges: Vec<(f64, f64)>,
}

impl KnnRegressor {
    /// Creates an unfitted regressor using `k` neighbors (at least 1).
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            data: Dataset::new(0),
            ranges: Vec::new(),
        }
    }

    /// Number of neighbors consulted per prediction.
    pub fn k(&self) -> usize {
        self.k
    }

    fn normalized_distance(&self, a: &[f64], b: &[f64]) -> f64 {
        let mut d = 0.0;
        for (j, (&x, &y)) in a.iter().zip(b).enumerate() {
            let (lo, hi) = self.ranges[j];
            let span = hi - lo;
            let diff = if span > 0.0 { (x - y) / span } else { 0.0 };
            d += diff * diff;
        }
        d.sqrt()
    }

    /// Indices and distances of the `k` nearest training rows to `row`.
    pub fn neighbors(&self, row: &[f64]) -> Vec<(usize, f64)> {
        let mut dists: Vec<(usize, f64)> = (0..self.data.n_rows())
            .map(|i| (i, self.normalized_distance(row, self.data.row(i))))
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1));
        dists.truncate(self.k);
        dists
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit k-NN to an empty dataset");
        self.data = data.clone();
        self.ranges = data.column_ranges();
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nn = self.neighbors(row);
        // Exact hit: return its target directly (avoids 1/0 weights).
        if let Some(&(i, d)) = nn.first() {
            if d == 0.0 {
                return self.data.target(i);
            }
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, d) in nn {
            let w = 1.0 / d;
            num += w * self.data.target(i);
            den += w;
        }
        num / den
    }

    fn is_fitted(&self) -> bool {
        !self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            rows.push(vec![i as f64]);
            ys.push(2.0 * i as f64);
        }
        Dataset::from_rows(&rows, &ys)
    }

    #[test]
    fn exact_hit_returns_training_target() {
        let mut model = KnnRegressor::new(3);
        model.fit(&grid());
        assert_eq!(model.predict_row(&[4.0]), 8.0);
    }

    #[test]
    fn interpolates_between_neighbors() {
        let mut model = KnnRegressor::new(2);
        model.fit(&grid());
        let p = model.predict_row(&[4.5]);
        assert!((p - 9.0).abs() < 1e-9, "midpoint should average: {p}");
    }

    #[test]
    fn k_larger_than_data_uses_all_rows() {
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[0.0, 10.0]);
        let mut model = KnnRegressor::new(50);
        model.fit(&data);
        let p = model.predict_row(&[0.25]);
        assert!(p > 0.0 && p < 10.0);
    }

    #[test]
    fn constant_feature_is_ignored_in_distance() {
        let data = Dataset::from_rows(
            &[vec![0.0, 7.0], vec![1.0, 7.0], vec![2.0, 7.0]],
            &[0.0, 1.0, 2.0],
        );
        let mut model = KnnRegressor::new(1);
        model.fit(&data);
        // Constant column contributes zero distance even when the probe
        // deviates wildly in it.
        assert_eq!(model.predict_row(&[1.0, 1000.0]), 1.0);
    }

    #[test]
    fn neighbors_sorted_by_distance() {
        let mut model = KnnRegressor::new(3);
        model.fit(&grid());
        let nn = model.neighbors(&[3.2]);
        assert_eq!(nn[0].0, 3);
        assert!(nn[0].1 <= nn[1].1 && nn[1].1 <= nn[2].1);
    }

    #[test]
    fn k_is_clamped_to_one() {
        assert_eq!(KnnRegressor::new(0).k(), 1);
    }
}
