//! Gaussian-process regression with an RBF kernel.
//!
//! The paper's future work (§9) proposes Bayesian optimization as an
//! alternative black-box technique inside the bootstrapping method,
//! because BO "may naturally consider noise in selecting top
//! configurations". A GP posterior supplies both the mean prediction and
//! the predictive uncertainty that acquisition functions need.
//!
//! Exact GP with Cholesky factorization — cubic in the number of training
//! samples, which is fine here: auto-tuning budgets are tens of samples.

use crate::dataset::Dataset;
use crate::Regressor;

/// Hyperparameters of the RBF-kernel GP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpParams {
    /// Kernel length scale (in normalized feature units).
    pub length_scale: f64,
    /// Signal variance σ_f².
    pub signal_variance: f64,
    /// Observation-noise variance σ_n² added to the kernel diagonal.
    pub noise_variance: f64,
}

impl Default for GpParams {
    fn default() -> Self {
        Self {
            length_scale: 0.3,
            signal_variance: 1.0,
            noise_variance: 1e-4,
        }
    }
}

/// A fitted Gaussian-process regressor.
///
/// Targets are internally standardized (zero mean, unit variance) so the
/// default kernel hyperparameters behave across the orders of magnitude
/// spanned by execution times.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    params: GpParams,
    train_x: Vec<Vec<f64>>,
    /// Cholesky factor L of (K + σ_n² I), row-major lower triangular.
    chol: Vec<f64>,
    /// α = (K + σ_n² I)⁻¹ y, for the posterior mean.
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// Creates an unfitted GP.
    pub fn new(params: GpParams) -> Self {
        Self {
            params,
            train_x: Vec::new(),
            chol: Vec::new(),
            alpha: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.params.signal_variance
            * (-d2 / (2.0 * self.params.length_scale * self.params.length_scale)).exp()
    }

    /// Posterior mean and variance at `row`.
    ///
    /// Returns the prior when unfitted.
    pub fn predict_with_variance(&self, row: &[f64]) -> (f64, f64) {
        let n = self.train_x.len();
        if n == 0 {
            return (
                self.y_mean,
                self.params.signal_variance * self.y_std * self.y_std,
            );
        }
        let k_star: Vec<f64> = self.train_x.iter().map(|x| self.kernel(x, row)).collect();
        // mean = k*ᵀ α
        let mean_std: f64 = k_star.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        // v = L⁻¹ k*; var = k(x,x) − vᵀv
        let mut v = k_star;
        for i in 0..n {
            let mut sum = v[i];
            for (j, vj) in v.iter().enumerate().take(i) {
                sum -= self.chol[i * n + j] * vj;
            }
            v[i] = sum / self.chol[i * n + i];
        }
        let var_std = (self.kernel(row, row) - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (
            mean_std * self.y_std + self.y_mean,
            var_std * self.y_std * self.y_std,
        )
    }

    /// Number of training samples.
    pub fn n_train(&self) -> usize {
        self.train_x.len()
    }
}

impl Regressor for GaussianProcess {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit a GP to an empty dataset");
        let n = data.n_rows();
        self.train_x = (0..n).map(|i| data.row(i).to_vec()).collect();

        self.y_mean = data.target_mean();
        let var: f64 = data
            .targets()
            .iter()
            .map(|y| (y - self.y_mean) * (y - self.y_mean))
            .sum::<f64>()
            / n as f64;
        self.y_std = var.sqrt().max(1e-12);
        let y_std: Vec<f64> = data
            .targets()
            .iter()
            .map(|y| (y - self.y_mean) / self.y_std)
            .collect();

        // K + σ_n² I, then in-place Cholesky.
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = self.kernel(&self.train_x[i], &self.train_x[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
            k[i * n + i] += self.params.noise_variance.max(1e-10);
        }
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = k[i * n + j];
                for t in 0..j {
                    sum -= l[i * n + t] * l[j * n + t];
                }
                if i == j {
                    // Jitter keeps duplicated rows factorizable.
                    l[i * n + i] = sum.max(1e-12).sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Solve L z = y, then Lᵀ α = z.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = y_std[i];
            for j in 0..i {
                sum -= l[i * n + j] * z[j];
            }
            z[i] = sum / l[i * n + i];
        }
        let mut alpha = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for j in i + 1..n {
                sum -= l[j * n + i] * alpha[j];
            }
            alpha[i] = sum / l[i * n + i];
        }
        self.chol = l;
        self.alpha = alpha;
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.predict_with_variance(row).0
    }

    fn is_fitted(&self) -> bool {
        !self.train_x.is_empty()
    }
}

/// Expected improvement (for minimization) of a candidate with posterior
/// `(mean, variance)` against the incumbent best observed value.
pub fn expected_improvement(mean: f64, variance: f64, best: f64) -> f64 {
    let sd = variance.sqrt();
    if sd < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / sd;
    let phi = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let big_phi = 0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2));
    (best - mean) * big_phi + sd * phi
}

/// Abramowitz–Stegun 7.1.26 rational approximation of erf (|err| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        Dataset::from_rows(&rows, &ys)
    }

    #[test]
    fn interpolates_training_points() {
        let mut gp = GaussianProcess::new(GpParams::default());
        let data = line_data();
        gp.fit(&data);
        for i in 0..data.n_rows() {
            let p = gp.predict_row(data.row(i));
            assert!(
                (p - data.target(i)).abs() < 0.05,
                "{} vs {}",
                p,
                data.target(i)
            );
        }
    }

    #[test]
    fn variance_is_small_at_data_large_far_away() {
        let mut gp = GaussianProcess::new(GpParams::default());
        gp.fit(&line_data());
        let (_, var_at) = gp.predict_with_variance(&[0.5]);
        let (_, var_far) = gp.predict_with_variance(&[5.0]);
        assert!(var_at < var_far / 10.0, "at-data {var_at} vs far {var_far}");
    }

    #[test]
    fn unfitted_returns_prior() {
        let gp = GaussianProcess::new(GpParams::default());
        assert!(!gp.is_fitted());
        let (m, v) = gp.predict_with_variance(&[0.0]);
        assert_eq!(m, 0.0);
        assert!(v > 0.0);
    }

    #[test]
    fn handles_duplicate_rows() {
        let rows = vec![vec![0.5], vec![0.5], vec![0.7]];
        let ys = vec![1.0, 1.2, 2.0];
        let mut gp = GaussianProcess::new(GpParams::default());
        gp.fit(&Dataset::from_rows(&rows, &ys));
        let p = gp.predict_row(&[0.5]);
        assert!(p.is_finite());
        assert!((0.8..1.4).contains(&p), "should average duplicates: {p}");
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((erf(3.0) - 0.99998).abs() < 1e-4);
    }

    #[test]
    fn expected_improvement_behaviour() {
        // Candidate clearly better than incumbent: EI ≈ gap.
        let ei_better = expected_improvement(1.0, 0.01, 5.0);
        assert!((ei_better - 4.0).abs() < 0.1, "{ei_better}");
        // Candidate clearly worse with tiny variance: EI ≈ 0.
        let ei_worse = expected_improvement(10.0, 0.01, 5.0);
        assert!(ei_worse < 1e-6);
        // Uncertainty adds optimism.
        let ei_uncertain = expected_improvement(5.0, 4.0, 5.0);
        assert!(ei_uncertain > 0.5);
        // EI is monotone in variance at fixed mean.
        assert!(expected_improvement(6.0, 9.0, 5.0) > expected_improvement(6.0, 1.0, 5.0));
    }
}
