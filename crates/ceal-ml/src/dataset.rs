//! A small, dense, row-major tabular dataset.
//!
//! Sized for auto-tuning workloads: at most a few thousand rows and a
//! handful of numeric features (configuration parameters, optionally
//! augmented with component-model predictions for the ALpH combiner).

use rand::seq::SliceRandom;
use rand::Rng;

/// Dense row-major feature matrix with a scalar target per row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    n_features: usize,
    features: Vec<f64>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset expecting `n_features` columns per row.
    pub fn new(n_features: usize) -> Self {
        Self {
            n_features,
            features: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Creates a dataset from rows and targets.
    ///
    /// # Panics
    /// Panics if rows have inconsistent widths or lengths differ.
    pub fn from_rows(rows: &[Vec<f64>], targets: &[f64]) -> Self {
        assert_eq!(rows.len(), targets.len(), "rows/targets length mismatch");
        let n_features = rows.first().map_or(0, Vec::len);
        let mut ds = Self::new(n_features);
        for (row, &y) in rows.iter().zip(targets) {
            ds.push_row(row, y);
        }
        ds
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if `row.len()` does not match the dataset width.
    pub fn push_row(&mut self, row: &[f64], target: f64) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        self.features.extend_from_slice(row);
        self.targets.push(target);
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.targets.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// True when the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Borrows row `i` as a feature slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// The raw row-major feature storage (`n_rows * n_features` values),
    /// for batch kernels that index rows from one base offset.
    pub(crate) fn feature_data(&self) -> &[f64] {
        &self.features
    }

    /// Target of row `i`.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Value of feature `j` in row `i`.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.features[i * self.n_features + j]
    }

    /// Mean of the targets (0 for an empty dataset).
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }

    /// Appends every row of `other`.
    ///
    /// # Panics
    /// Panics on feature-width mismatch (unless `self` is empty with zero
    /// width, in which case it adopts `other`'s width).
    pub fn extend_from(&mut self, other: &Dataset) {
        if self.n_features == 0 && self.targets.is_empty() {
            self.n_features = other.n_features;
        }
        assert_eq!(self.n_features, other.n_features, "dataset width mismatch");
        self.features.extend_from_slice(&other.features);
        self.targets.extend_from_slice(&other.targets);
    }

    /// Returns the sub-dataset at the given row indices.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_features);
        for &i in indices {
            out.push_row(self.row(i), self.targets[i]);
        }
        out
    }

    /// Splits rows into `(train, test)` with `test_fraction` of rows in the
    /// test set, shuffled by `rng`.
    pub fn train_test_split<R: Rng>(&self, test_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.shuffle(rng);
        let n_test = ((self.n_rows() as f64) * test_fraction).round() as usize;
        let n_test = n_test.min(self.n_rows());
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.select(train_idx), self.select(test_idx))
    }

    /// Draws a bootstrap sample (with replacement) of `n` rows.
    pub fn bootstrap<R: Rng>(&self, n: usize, rng: &mut R) -> Dataset {
        let mut out = Dataset::new(self.n_features);
        if self.is_empty() {
            return out;
        }
        for _ in 0..n {
            let i = rng.gen_range(0..self.n_rows());
            out.push_row(self.row(i), self.targets[i]);
        }
        out
    }

    /// Per-column (min, max) over all rows; empty dataset yields empty vec.
    pub fn column_ranges(&self) -> Vec<(f64, f64)> {
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); self.n_features];
        for i in 0..self.n_rows() {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                if v < ranges[j].0 {
                    ranges[j].0 = v;
                }
                if v > ranges[j].1 {
                    ranges[j].1 = v;
                }
            }
        }
        if self.is_empty() {
            ranges.clear();
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample() -> Dataset {
        Dataset::from_rows(
            &[
                vec![1.0, 2.0],
                vec![3.0, 4.0],
                vec![5.0, 6.0],
                vec![7.0, 8.0],
            ],
            &[10.0, 20.0, 30.0, 40.0],
        )
    }

    #[test]
    fn roundtrip_rows_and_targets() {
        let ds = sample();
        assert_eq!(ds.n_rows(), 4);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.row(2), &[5.0, 6.0]);
        assert_eq!(ds.target(3), 40.0);
        assert_eq!(ds.value(1, 1), 4.0);
    }

    #[test]
    fn target_mean_matches() {
        assert!((sample().target_mean() - 25.0).abs() < 1e-12);
        assert_eq!(Dataset::new(3).target_mean(), 0.0);
    }

    #[test]
    fn select_picks_rows_in_order() {
        let ds = sample().select(&[3, 0]);
        assert_eq!(ds.row(0), &[7.0, 8.0]);
        assert_eq!(ds.target(1), 10.0);
    }

    #[test]
    fn split_partitions_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (train, test) = sample().train_test_split(0.5, &mut rng);
        assert_eq!(train.n_rows() + test.n_rows(), 4);
        assert_eq!(test.n_rows(), 2);
    }

    #[test]
    fn bootstrap_has_requested_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let b = sample().bootstrap(10, &mut rng);
        assert_eq!(b.n_rows(), 10);
        for i in 0..b.n_rows() {
            assert!(b.target(i) >= 10.0 && b.target(i) <= 40.0);
        }
    }

    #[test]
    fn extend_adopts_width_when_empty() {
        let mut ds = Dataset::new(0);
        ds.extend_from(&sample());
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_rows(), 4);
    }

    #[test]
    fn column_ranges_cover_data() {
        let ranges = sample().column_ranges();
        assert_eq!(ranges, vec![(1.0, 7.0), (2.0, 8.0)]);
        assert!(Dataset::new(2).column_ranges().is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_rejects_bad_width() {
        let mut ds = Dataset::new(2);
        ds.push_row(&[1.0], 0.0);
    }
}
