//! Regression quality metrics used throughout the evaluation.
//!
//! The paper reports MdAPE (median absolute percentage error, §7.4.2) for
//! model accuracy; RMSE/R² are used internally for validation and tests;
//! Spearman rank correlation is a useful diagnostic for ranking-oriented
//! surrogates (the auto-tuner only needs correct *ordering* of configs).

/// Mean squared error. Returns 0 for empty inputs.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        actual.len(),
        predicted.len(),
        "metric input length mismatch"
    );
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p) * (y - p))
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    mse(actual, predicted).sqrt()
}

/// Mean absolute error. Returns 0 for empty inputs.
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        actual.len(),
        predicted.len(),
        "metric input length mismatch"
    );
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Absolute percentage error of one sample: `|(y - y')/y|` (paper §7.4.2).
///
/// Samples with `y == 0` are undefined; callers should filter them (the
/// workloads here have strictly positive times).
pub fn ape(actual: f64, predicted: f64) -> f64 {
    ((actual - predicted) / actual).abs()
}

/// Median absolute percentage error, in percent (paper Fig. 6).
///
/// Rows with a zero actual value are skipped. Returns 0 when nothing
/// remains.
pub fn mdape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        actual.len(),
        predicted.len(),
        "metric input length mismatch"
    );
    let mut apes: Vec<f64> = actual
        .iter()
        .zip(predicted)
        .filter(|(y, _)| **y != 0.0)
        .map(|(&y, &p)| ape(y, p))
        .collect();
    if apes.is_empty() {
        return 0.0;
    }
    apes.sort_by(|a, b| a.total_cmp(b));
    let n = apes.len();
    let median = if n % 2 == 1 {
        apes[n / 2]
    } else {
        0.5 * (apes[n / 2 - 1] + apes[n / 2])
    };
    median * 100.0
}

/// Coefficient of determination R². Returns 0 when the targets are constant.
pub fn r2(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        actual.len(),
        predicted.len(),
        "metric input length mismatch"
    );
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|y| (y - mean) * (y - mean)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p) * (y - p))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Ranks of the values (average rank for ties), 1-based.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average 1-based rank across the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient in [-1, 1].
///
/// Returns 0 for fewer than two samples or constant inputs.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "metric input length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let mean = (a.len() as f64 + 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        num += (x - mean) * (y - mean);
        da += (x - mean) * (x - mean);
        db += (y - mean) * (y - mean);
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da.sqrt() * db.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_rmse_basic() {
        let y = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((mse(&y, &p) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&y, &p) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_scores() {
        let y = [1.0, 5.0, 9.0];
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(mdape(&y, &y), 0.0);
        assert!((r2(&y, &y) - 1.0).abs() < 1e-12);
        assert!((spearman(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mdape_is_median_percentage() {
        // APEs: 10%, 20%, 50% -> median 20%.
        let y = [10.0, 10.0, 10.0];
        let p = [11.0, 12.0, 15.0];
        assert!((mdape(&y, &p) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mdape_even_count_averages_middle() {
        // APEs: 10%, 20%, 30%, 50% -> median 25%.
        let y = [10.0, 10.0, 10.0, 10.0];
        let p = [11.0, 12.0, 13.0, 15.0];
        assert!((mdape(&y, &p) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn mdape_skips_zero_actuals() {
        let y = [0.0, 10.0];
        let p = [5.0, 12.0];
        assert!((mdape(&y, &p) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn r2_constant_targets_zero() {
        assert_eq!(r2(&[2.0, 2.0], &[1.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_detects_reversed_order() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [8.0, 6.0, 4.0, 2.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0];
        let b = [3.0, 3.0, 4.0];
        let s = spearman(&a, &b);
        assert!(s > 0.99, "tied ranks should still correlate, got {s}");
    }

    #[test]
    fn ranks_average_over_ties() {
        assert_eq!(ranks(&[5.0, 1.0, 5.0]), vec![2.5, 1.0, 2.5]);
    }
}
