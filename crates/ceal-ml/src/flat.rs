//! Flattened structure-of-arrays ensemble layout for fast batch prediction.
//!
//! [`RegressionTree`] stores nodes as an enum `Vec` — ergonomic for growth,
//! slow for the pool-scoring hot loop: every step matches on a variant,
//! chases a heterogeneous node, and takes a data-dependent branch that
//! mispredicts about half the time on a diverse candidate pool. [`FlatTrees`]
//! re-lays a fitted ensemble into parallel arrays indexed by one global node
//! id: `threshold` (f64) and `meta` (feature id and left-child slot packed
//! into one u64, so a descend step issues exactly three loads). Each split's
//! two children occupy **adjacent slots** (`right = left + 1`), making the
//! descend a branchless compare-and-add:
//!
//! ```text
//! j = child[j] + (row[feature[j]] > threshold[j]) as usize
//! ```
//!
//! Leaves are encoded as **self-loops**: `feature = 0`, `threshold = +∞`,
//! `child = self`. `v > +∞` is false for every `v` (including NaN), so once
//! a walk lands on a leaf it stays there, and the inner loop can run for the
//! tree's full depth unconditionally — no per-step exit branch at all.
//!
//! `NaN > t` is false for every `t`, so NaN feature values route left,
//! matching [`RegressionTree::predict_row`]. Per-row sums accumulate in
//! tree order, and batch parallelism only splits across rows, so batch
//! results are bit-identical to row-at-a-time prediction and independent of
//! the worker count.

use crate::dataset::Dataset;
use crate::tree::{Node, RegressionTree};

/// Minimum rows × tree-steps product before batch prediction fans out over
/// the thread pool.
const PAR_WORK_THRESHOLD: usize = 1 << 20;

/// Upper bound on rows per batch block. Within a block the walk runs
/// tree-outer / row-inner: consecutive rows are independent, so the CPU
/// overlaps their pointer-chasing walks (the per-row chain of dependent
/// loads is the bottleneck otherwise), while the block's rows and the
/// active tree-pair's nodes stay cache-resident.
const MAX_BLOCK_ROWS: usize = 256;

/// Feature values a block may hold so its rows stay L1-resident while
/// every tree re-reads them (~16 KiB of f64 plus node and output arrays).
const BLOCK_VALUES: usize = 2048;

/// Rows per block for `p`-wide rows: a multiple of 4 (the row-interleave
/// width) between 16 and [`MAX_BLOCK_ROWS`].
fn block_rows(p: usize) -> usize {
    (BLOCK_VALUES / p.max(1)).clamp(16, MAX_BLOCK_ROWS) & !3
}

/// Number of bits the feature id is shifted by inside a `meta` word; the
/// low half holds the left-child slot.
const FEATURE_SHIFT: u32 = 32;

/// A fitted tree ensemble flattened into structure-of-arrays form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatTrees {
    /// Per node: `feature << 32 | child`. `child` is the left-child slot of
    /// a split (its right child lives at `child + 1`) or the node's own
    /// slot for a leaf (self-loop).
    meta: Vec<u64>,
    /// Per node: split threshold, or `+∞` for a leaf.
    threshold: Vec<f64>,
    /// Leaf weight per node id (0 for splits); only read at walk end.
    weight: Vec<f64>,
    /// Largest feature id any node reads — validated against the row width
    /// once per batch so the hot loop can skip per-step bounds checks.
    max_feature: u32,
    /// Tree `t` owns nodes `offsets[t]..offsets[t + 1]`; roots sit at
    /// `offsets[t]`. Length `n_trees + 1`.
    offsets: Vec<u32>,
    /// Maximum leaf depth of each tree: the walk length.
    depths: Vec<u32>,
}

impl FlatTrees {
    /// Flattens fitted trees. Tree order is preserved; per-row sums run in
    /// this order. Nodes are re-numbered breadth-first so every split's
    /// children occupy adjacent slots (the branchless-descend invariant)
    /// and shallow, hot nodes sit contiguously at the front of each tree.
    pub fn from_trees(trees: &[RegressionTree]) -> Self {
        let total: usize = trees.iter().map(|t| t.n_nodes()).sum();
        assert!(total < u32::MAX as usize, "ensemble exceeds u32 node ids");
        let mut flat = Self {
            meta: vec![0; total],
            threshold: vec![0.0; total],
            weight: vec![0.0; total],
            max_feature: 0,
            offsets: Vec::with_capacity(trees.len() + 1),
            depths: Vec::with_capacity(trees.len()),
        };
        flat.offsets.push(0);
        let mut queue = std::collections::VecDeque::new();
        for tree in trees {
            let nodes = tree.nodes();
            let base = *flat.offsets.last().unwrap() as usize;
            if nodes.is_empty() {
                flat.offsets.push(base as u32);
                flat.depths.push(0);
                continue;
            }
            // Slot 0 of the tree is its root; splits allocate their two
            // children as the next free pair.
            let mut next = base + 1;
            queue.clear();
            queue.push_back((0usize, base));
            while let Some((src, slot)) = queue.pop_front() {
                match nodes[src] {
                    Node::Leaf { weight } => {
                        flat.meta[slot] = slot as u64;
                        flat.threshold[slot] = f64::INFINITY;
                        flat.weight[slot] = weight;
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        flat.meta[slot] = ((feature as u64) << FEATURE_SHIFT) | next as u64;
                        flat.threshold[slot] = threshold;
                        flat.max_feature = flat.max_feature.max(feature as u32);
                        queue.push_back((left, next));
                        queue.push_back((right, next + 1));
                        next += 2;
                    }
                }
            }
            debug_assert_eq!(next, base + nodes.len());
            flat.offsets.push((base + nodes.len()) as u32);
            flat.depths.push(tree.depth() as u32);
        }
        flat
    }

    /// Number of flattened trees.
    pub fn n_trees(&self) -> usize {
        self.depths.len()
    }

    /// True when no trees have been flattened.
    pub fn is_empty(&self) -> bool {
        self.depths.is_empty()
    }

    /// One branchless descend: left child at `child`, right adjacent.
    /// `NaN > t` compares false, routing left like the enum walker.
    #[inline(always)]
    fn step(&self, j: usize, row: &[f64]) -> usize {
        let m = self.meta[j];
        let f = (m >> FEATURE_SHIFT) as usize;
        (m as u32) as usize + (row[f] > self.threshold[j]) as usize
    }

    /// [`Self::step`] against a span of consecutive rows, without per-step
    /// bounds checks, for the batch hot loop. `off` is the row's base
    /// offset inside `span` (a multiple of the feature count).
    ///
    /// # Safety
    ///
    /// `j` must be a valid node id (roots from `offsets` and every stored
    /// `child` are, by construction), and `span` must hold at least
    /// `off + max_feature + 1` values — [`Self::predict_batch_sum`] asserts
    /// the row width once per batch, and callers pass `off` at most
    /// `span.len() - n_features`.
    #[inline(always)]
    unsafe fn step_unchecked(&self, j: usize, span: &[f64], off: usize) -> usize {
        let m = *self.meta.get_unchecked(j);
        let t = *self.threshold.get_unchecked(j);
        let f = (m >> FEATURE_SHIFT) as usize;
        (m as u32) as usize + (*span.get_unchecked(off + f) > t) as usize
    }

    #[inline]
    fn walk(&self, t: usize, row: &[f64]) -> f64 {
        let mut j = self.offsets[t] as usize;
        for _ in 0..self.depths[t] {
            j = self.step(j, row);
        }
        self.weight[j]
    }

    /// Sum of all trees' leaf weights for one feature row, accumulated in
    /// tree order.
    pub fn predict_row_sum(&self, row: &[f64]) -> f64 {
        let mut acc = 0.0;
        for t in 0..self.n_trees() {
            acc += self.walk(t, row);
        }
        acc
    }

    /// Walks every tree for one block of rows, accumulating each row's sum
    /// in tree order — the same left-fold [`Self::predict_row_sum`] uses,
    /// so the result is bit-identical to the row-at-a-time walk.
    ///
    /// A single walk is a chain of dependent loads the CPU cannot pipeline,
    /// but walks of different (row, tree) pairs are independent, so trees
    /// are taken two at a time and rows four at a time: eight descends in
    /// flight hide most of that latency, addressed off one shared span
    /// pointer to keep the loop's live registers small. A pair shares one
    /// loop of `max(depth)` steps — overshooting the shallower tree is
    /// harmless because leaves self-loop. Each row still adds its two leaf
    /// weights in tree order, so the per-row accumulation order is
    /// untouched.
    fn sum_block(&self, data: &Dataset, start: usize, end: usize) -> Vec<f64> {
        let n = end - start;
        let p = data.n_features();
        let feats = data.feature_data();
        let mut out = vec![0.0; n];
        let n_trees = self.n_trees();
        let mut t = 0;
        while t + 2 <= n_trees {
            let ra = self.offsets[t] as usize;
            let rb = self.offsets[t + 1] as usize;
            let depth = self.depths[t].max(self.depths[t + 1]);
            let mut i = 0;
            while i + 4 <= n {
                let span = &feats[(start + i) * p..(start + i + 4) * p];
                let (mut a0, mut a1, mut a2, mut a3) = (ra, ra, ra, ra);
                let (mut b0, mut b1, mut b2, mut b3) = (rb, rb, rb, rb);
                // SAFETY: node ids stay valid by construction; row offsets
                // within the span are `k * p + f` with `k < 4` and
                // `f <= max_feature < p` (asserted in `predict_batch_sum`).
                unsafe {
                    for _ in 0..depth {
                        a0 = self.step_unchecked(a0, span, 0);
                        a1 = self.step_unchecked(a1, span, p);
                        a2 = self.step_unchecked(a2, span, 2 * p);
                        a3 = self.step_unchecked(a3, span, 3 * p);
                        b0 = self.step_unchecked(b0, span, 0);
                        b1 = self.step_unchecked(b1, span, p);
                        b2 = self.step_unchecked(b2, span, 2 * p);
                        b3 = self.step_unchecked(b3, span, 3 * p);
                    }
                }
                out[i] += self.weight[a0];
                out[i] += self.weight[b0];
                out[i + 1] += self.weight[a1];
                out[i + 1] += self.weight[b1];
                out[i + 2] += self.weight[a2];
                out[i + 2] += self.weight[b2];
                out[i + 3] += self.weight[a3];
                out[i + 3] += self.weight[b3];
                i += 4;
            }
            while i < n {
                let row = data.row(start + i);
                let (mut a, mut b) = (ra, rb);
                for _ in 0..depth {
                    a = self.step(a, row);
                    b = self.step(b, row);
                }
                out[i] += self.weight[a];
                out[i] += self.weight[b];
                i += 1;
            }
            t += 2;
        }
        if t < n_trees {
            let root = self.offsets[t] as usize;
            let depth = self.depths[t];
            for (acc, i) in out.iter_mut().zip(start..end) {
                let row = data.row(i);
                let mut j = root;
                for _ in 0..depth {
                    j = self.step(j, row);
                }
                *acc += self.weight[j];
            }
        }
        out
    }

    /// Per-row tree-weight sums for every row of `data` — bit-identical to
    /// calling [`Self::predict_row_sum`] per row, for any worker count.
    ///
    /// Rows are processed in blocks; parallelism (when the batch is large
    /// enough to amortize thread spawns) only distributes whole blocks, and
    /// block results are stitched back in input order.
    pub fn predict_batch_sum(&self, data: &Dataset) -> Vec<f64> {
        let n = data.n_rows();
        // The hot loop indexes rows without per-step bounds checks; check
        // the width once here instead.
        assert!(
            self.meta.is_empty() || n == 0 || data.n_features() > self.max_feature as usize,
            "batch rows have {} features but the ensemble reads feature {}",
            data.n_features(),
            self.max_feature
        );
        let steps: usize = self.depths.iter().map(|&d| d as usize).sum();
        let block = block_rows(data.n_features());
        let blocks: Vec<(usize, usize)> = (0..n)
            .step_by(block)
            .map(|s| (s, (s + block).min(n)))
            .collect();
        let parts: Vec<Vec<f64>> = if n * steps.max(1) >= PAR_WORK_THRESHOLD {
            ceal_par::parallel_map(&blocks, |&(s, e)| self.sum_block(data, s, e))
        } else {
            blocks
                .iter()
                .map(|&(s, e)| self.sum_block(data, s, e))
                .collect()
        };
        parts.concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;

    fn fitted_trees() -> (Vec<RegressionTree>, Dataset) {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64, (i % 5) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] * r[1]).collect();
        let data = Dataset::from_rows(&rows, &ys);
        let idx: Vec<usize> = (0..40).collect();
        let trees = vec![
            RegressionTree::fit_targets(&data, &idx, &[0, 1], TreeParams::default()),
            RegressionTree::fit_targets(
                &data,
                &idx,
                &[0],
                TreeParams {
                    max_depth: 2,
                    ..Default::default()
                },
            ),
        ];
        (trees, data)
    }

    #[test]
    fn flat_matches_enum_walk_exactly() {
        let (trees, data) = fitted_trees();
        let flat = FlatTrees::from_trees(&trees);
        assert_eq!(flat.n_trees(), 2);
        for i in 0..data.n_rows() {
            let row = data.row(i);
            let want: f64 = trees.iter().map(|t| t.predict_row(row)).sum();
            assert_eq!(flat.predict_row_sum(row), want, "row {i}");
        }
    }

    #[test]
    fn batch_matches_row_at_a_time() {
        let (trees, data) = fitted_trees();
        let flat = FlatTrees::from_trees(&trees);
        let batch = flat.predict_batch_sum(&data);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(b, flat.predict_row_sum(data.row(i)));
        }
    }

    #[test]
    fn nan_routes_left_like_enum_walker() {
        let (trees, _) = fitted_trees();
        let flat = FlatTrees::from_trees(&trees);
        let row = [f64::NAN, 1.0];
        let want: f64 = trees.iter().map(|t| t.predict_row(&row)).sum();
        assert_eq!(flat.predict_row_sum(&row), want);
    }

    #[test]
    fn empty_ensemble_sums_to_zero() {
        let flat = FlatTrees::from_trees(&[]);
        assert!(flat.is_empty());
        assert_eq!(flat.predict_row_sum(&[1.0]), 0.0);
    }
}
