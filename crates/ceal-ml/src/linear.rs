//! Ridge regression via Cholesky-solved normal equations.
//!
//! Feature dimensionality in this workspace is tiny (≤ ~10 configuration
//! parameters), so forming `XᵀX + αI` densely and factorizing it is both the
//! simplest and the fastest approach. Used by the HyBoost ablation (paper
//! §8.2) as the analytic-model error corrector's base learner and available
//! as a cheap surrogate baseline.

use crate::dataset::Dataset;
use crate::Regressor;

/// Ridge (L2-regularized least squares) regression with an intercept.
#[derive(Debug, Clone)]
pub struct Ridge {
    alpha: f64,
    /// Learned weights; last entry is the intercept.
    weights: Vec<f64>,
}

impl Ridge {
    /// Creates an unfitted model with regularization strength `alpha >= 0`.
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha: alpha.max(0.0),
            weights: Vec::new(),
        }
    }

    /// Learned coefficients (feature weights followed by the intercept).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Solves `A x = b` for symmetric positive-definite `A` (dense, row-major)
/// via Cholesky decomposition. Returns `None` if `A` is not SPD.
fn cholesky_solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    // Lower-triangular factor L with A = L Lᵀ.
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Some(x)
}

impl Regressor for Ridge {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit ridge to an empty dataset");
        let p = data.n_features() + 1; // + intercept column
        let n = data.n_rows();
        // Normal equations: (XᵀX + αI) w = Xᵀy, with the intercept column
        // excluded from regularization.
        let mut xtx = vec![0.0; p * p];
        let mut xty = vec![0.0; p];
        for i in 0..n {
            let row = data.row(i);
            let y = data.target(i);
            for a in 0..p {
                let xa = if a + 1 == p { 1.0 } else { row[a] };
                xty[a] += xa * y;
                for b in 0..p {
                    let xb = if b + 1 == p { 1.0 } else { row[b] };
                    xtx[a * p + b] += xa * xb;
                }
            }
        }
        for a in 0..p - 1 {
            xtx[a * p + a] += self.alpha;
        }
        // Tiny jitter keeps the intercept-only diagonal positive for
        // degenerate inputs (e.g. duplicated rows with alpha = 0).
        let solved = cholesky_solve(&xtx, &xty, p).or_else(|| {
            let mut jittered = xtx.clone();
            for a in 0..p {
                jittered[a * p + a] += 1e-8;
            }
            cholesky_solve(&jittered, &xty, p)
        });
        self.weights = solved.unwrap_or_else(|| vec![0.0; p]);
        if self.weights.iter().all(|w| *w == 0.0) && !data.is_empty() {
            // Last-resort fallback: intercept = mean.
            self.weights[p - 1] = data.target_mean();
        }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if self.weights.is_empty() {
            return 0.0;
        }
        let p = self.weights.len();
        let mut y = self.weights[p - 1];
        for (w, x) in self.weights[..p - 1].iter().zip(row) {
            y += w * x;
        }
        y
    }

    fn is_fitted(&self) -> bool {
        !self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_function() {
        // y = 2x0 - 3x1 + 5
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let x0 = i as f64;
            let x1 = (i * 7 % 13) as f64;
            rows.push(vec![x0, x1]);
            ys.push(2.0 * x0 - 3.0 * x1 + 5.0);
        }
        let data = Dataset::from_rows(&rows, &ys);
        let mut model = Ridge::new(1e-9);
        model.fit(&data);
        assert!((model.weights()[0] - 2.0).abs() < 1e-6);
        assert!((model.weights()[1] + 3.0).abs() < 1e-6);
        assert!((model.weights()[2] - 5.0).abs() < 1e-5);
        assert!((model.predict_row(&[10.0, 1.0]) - 22.0).abs() < 1e-5);
    }

    #[test]
    fn alpha_shrinks_coefficients() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 4.0 * i as f64).collect();
        let data = Dataset::from_rows(&rows, &ys);
        let mut weak = Ridge::new(0.001);
        let mut strong = Ridge::new(1000.0);
        weak.fit(&data);
        strong.fit(&data);
        assert!(strong.weights()[0].abs() < weak.weights()[0].abs());
    }

    #[test]
    fn constant_feature_degenerate_input_survives() {
        let data = Dataset::from_rows(&[vec![1.0], vec![1.0], vec![1.0]], &[3.0, 5.0, 7.0]);
        let mut model = Ridge::new(0.0);
        model.fit(&data);
        let p = model.predict_row(&[1.0]);
        assert!(
            (p - 5.0).abs() < 0.5,
            "should predict near the mean, got {p}"
        );
    }

    #[test]
    fn cholesky_solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = cholesky_solve(&a, &[3.0, 4.0], 2).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![0.0, 0.0, 0.0, -1.0];
        assert!(cholesky_solve(&a, &[1.0, 1.0], 2).is_none());
    }

    #[test]
    fn unfitted_predicts_zero() {
        let model = Ridge::new(1.0);
        assert!(!model.is_fitted());
        assert_eq!(model.predict_row(&[1.0]), 0.0);
    }
}
