//! A regression tree grown with the XGBoost split criterion.
//!
//! The tree is fit to per-row first/second-order gradient statistics
//! `(g_i, h_i)` rather than raw targets, which lets one implementation serve
//! both gradient boosting (where `g = prediction - target`, `h = 1` for
//! squared loss) and plain target fitting (`g = -target`, `h = 1`, giving
//! mean-value leaves), as used by the random forest.
//!
//! Split scoring follows Chen & Guestrin (KDD '16), the model the paper's
//! tuner uses:
//!
//! ```text
//! gain = 1/2 * ( GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ) ) − γ
//! ```
//!
//! with leaf weight `−G/(H+λ)`. Two split-search strategies share that
//! criterion: [`RegressionTree::fit_gradients`] quantizes features and
//! scans per-bin histograms (the fast default, see [`crate::binned`]),
//! while [`RegressionTree::fit_gradients_exact`] keeps the original exact
//! greedy enumeration — each node sorts its rows by each candidate feature
//! and scans prefix sums of `G`/`H` — as the reference the binned path is
//! tested and benchmarked against.

use crate::binned::{BinnedDataset, DEFAULT_MAX_BINS};
use crate::dataset::Dataset;

/// Hyperparameters controlling tree growth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0). Depth 0 yields a single leaf.
    pub max_depth: usize,
    /// Minimum sum of hessians required in each child.
    pub min_child_weight: f64,
    /// L2 regularization on leaf weights (XGBoost `lambda`).
    pub lambda: f64,
    /// Minimum loss reduction to accept a split (XGBoost `gamma`).
    pub gamma: f64,
    /// Minimum number of rows in each child.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_child_weight: 1.0,
            lambda: 1.0,
            gamma: 0.0,
            min_samples_leaf: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    /// `(feature, gain)` of every accepted split, for importance reports.
    split_gains: Vec<(usize, f64)>,
}

struct Grower<'a> {
    data: &'a Dataset,
    grad: &'a [f64],
    hess: &'a [f64],
    features: &'a [usize],
    params: TreeParams,
    nodes: Vec<Node>,
    split_gains: Vec<(usize, f64)>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

impl<'a> Grower<'a> {
    fn leaf_weight(&self, g: f64, h: f64) -> f64 {
        -g / (h + self.params.lambda)
    }

    fn score(&self, g: f64, h: f64) -> f64 {
        g * g / (h + self.params.lambda)
    }

    /// Finds the best split for the rows in `rows`, or `None` when no split
    /// satisfies the constraints with positive gain.
    fn best_split(&self, rows: &[usize], scratch: &mut Vec<(f64, usize)>) -> Option<BestSplit> {
        let total_g: f64 = rows.iter().map(|&i| self.grad[i]).sum();
        let total_h: f64 = rows.iter().map(|&i| self.hess[i]).sum();
        let parent_score = self.score(total_g, total_h);
        let mut best: Option<BestSplit> = None;

        for &f in self.features {
            scratch.clear();
            scratch.extend(rows.iter().map(|&i| (self.data.value(i, f), i)));
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for k in 0..scratch.len() - 1 {
                let (v, i) = scratch[k];
                gl += self.grad[i];
                hl += self.hess[i];
                let v_next = scratch[k + 1].0;
                if v_next == v {
                    continue; // no split point between equal values
                }
                let n_left = k + 1;
                let n_right = scratch.len() - n_left;
                if n_left < self.params.min_samples_leaf || n_right < self.params.min_samples_leaf {
                    continue;
                }
                let gr = total_g - gl;
                let hr = total_h - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gain = 0.5 * (self.score(gl, hl) + self.score(gr, hr) - parent_score)
                    - self.params.gamma;
                if gain > 0.0 && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(BestSplit {
                        feature: f,
                        threshold: 0.5 * (v + v_next),
                        gain,
                    });
                }
            }
        }
        best
    }

    fn grow(&mut self, rows: Vec<usize>, depth: usize, scratch: &mut Vec<(f64, usize)>) -> usize {
        let g: f64 = rows.iter().map(|&i| self.grad[i]).sum();
        let h: f64 = rows.iter().map(|&i| self.hess[i]).sum();

        let split = if depth >= self.params.max_depth || rows.len() < 2 {
            None
        } else {
            self.best_split(&rows, scratch)
        };

        match split {
            None => {
                self.nodes.push(Node::Leaf {
                    weight: self.leaf_weight(g, h),
                });
                self.nodes.len() - 1
            }
            Some(s) => {
                self.split_gains.push((s.feature, s.gain));
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
                    .into_iter()
                    .partition(|&i| self.data.value(i, s.feature) <= s.threshold);
                // Reserve this node's slot before growing children so child
                // indices are stable.
                let me = self.nodes.len();
                self.nodes.push(Node::Leaf { weight: 0.0 });
                let left = self.grow(left_rows, depth + 1, scratch);
                let right = self.grow(right_rows, depth + 1, scratch);
                self.nodes[me] = Node::Split {
                    feature: s.feature,
                    threshold: s.threshold,
                    left,
                    right,
                };
                me
            }
        }
    }
}

impl RegressionTree {
    pub(crate) fn from_parts(nodes: Vec<Node>, split_gains: Vec<(usize, f64)>) -> Self {
        Self { nodes, split_gains }
    }

    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Fits a tree to gradient statistics over `rows` of `data`, considering
    /// only the features in `features`.
    ///
    /// Quantizes the dataset and grows via histogram split finding
    /// ([`RegressionTree::fit_binned`]). Callers fitting many trees on one
    /// dataset should build the [`BinnedDataset`] themselves and call
    /// `fit_binned` directly so the quantization is paid once.
    ///
    /// # Panics
    /// Panics if `grad`/`hess` are shorter than the dataset, or `rows` is
    /// empty.
    pub fn fit_gradients(
        data: &Dataset,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        features: &[usize],
        params: TreeParams,
    ) -> Self {
        let binned = BinnedDataset::from_dataset(data, DEFAULT_MAX_BINS);
        Self::fit_binned(&binned, grad, hess, rows, features, params)
    }

    /// Fits a tree by exact greedy split enumeration (per-node sorts).
    ///
    /// This is the reference implementation the histogram path is validated
    /// against in tests and benchmarked against in `ceal-bench`; production
    /// callers use [`RegressionTree::fit_gradients`].
    ///
    /// # Panics
    /// Panics if `grad`/`hess` are shorter than the dataset, or `rows` is
    /// empty.
    pub fn fit_gradients_exact(
        data: &Dataset,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        features: &[usize],
        params: TreeParams,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree to zero rows");
        assert!(grad.len() >= data.n_rows() && hess.len() >= data.n_rows());
        let mut grower = Grower {
            data,
            grad,
            hess,
            features,
            params,
            nodes: Vec::new(),
            split_gains: Vec::new(),
        };
        let mut scratch = Vec::with_capacity(rows.len());
        grower.grow(rows.to_vec(), 0, &mut scratch);
        Self {
            nodes: grower.nodes,
            split_gains: grower.split_gains,
        }
    }

    /// Fits a plain mean-leaf regression tree directly to the targets
    /// (used by the random forest): `g = -y`, `h = 1`, `lambda = 0`.
    pub fn fit_targets(
        data: &Dataset,
        rows: &[usize],
        features: &[usize],
        params: TreeParams,
    ) -> Self {
        let grad: Vec<f64> = data.targets().iter().map(|y| -y).collect();
        let hess = vec![1.0; data.n_rows()];
        let params = TreeParams {
            lambda: 0.0,
            ..params
        };
        Self::fit_gradients(data, &grad, &hess, rows, features, params)
    }

    /// Predicts the leaf weight for a feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // NaN routes left, mirroring XGBoost's default direction.
                    let v = row[*feature];
                    i = if v <= *threshold || v.is_nan() {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Total split gain attributed to each of `n_features` features.
    pub fn feature_gains(&self, n_features: usize) -> Vec<f64> {
        let mut gains = vec![0.0; n_features];
        for &(f, g) in &self.split_gains {
            if f < n_features {
                gains[f] += g;
            }
        }
        gains
    }

    /// Maximum depth of any leaf (root = 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize, d: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => d,
                Node::Split { left, right, .. } => {
                    walk(nodes, *left, d + 1).max(walk(nodes, *right, d + 1))
                }
            }
        }
        walk(&self.nodes, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        // y = 1 for x < 5, y = 9 for x >= 5.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| if i < 5 { 1.0 } else { 9.0 }).collect();
        Dataset::from_rows(&rows, &ys)
    }

    #[test]
    fn learns_a_step_function() {
        let data = step_data();
        let rows: Vec<usize> = (0..10).collect();
        let tree = RegressionTree::fit_targets(&data, &rows, &[0], TreeParams::default());
        assert!((tree.predict_row(&[2.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict_row(&[8.0]) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_yields_mean_leaf() {
        let data = step_data();
        let rows: Vec<usize> = (0..10).collect();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let tree = RegressionTree::fit_targets(&data, &rows, &[0], params);
        assert_eq!(tree.n_leaves(), 1);
        assert!((tree.predict_row(&[0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let rows_v: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let data = Dataset::from_rows(&rows_v, &ys);
        let rows: Vec<usize> = (0..64).collect();
        let params = TreeParams {
            max_depth: 3,
            ..Default::default()
        };
        let tree = RegressionTree::fit_targets(&data, &rows, &[0], params);
        assert!(tree.depth() <= 3, "depth {} exceeds cap", tree.depth());
        assert!(tree.n_leaves() <= 8);
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_children() {
        let data = step_data();
        let rows: Vec<usize> = (0..10).collect();
        let params = TreeParams {
            min_samples_leaf: 6,
            ..Default::default()
        };
        let tree = RegressionTree::fit_targets(&data, &rows, &[0], params);
        // No split can give both children >= 6 of 10 rows.
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let data = step_data();
        let rows: Vec<usize> = (0..10).collect();
        let params = TreeParams {
            gamma: 1e9,
            ..Default::default()
        };
        let tree = RegressionTree::fit_targets(&data, &rows, &[0], params);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn lambda_shrinks_leaf_weights() {
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[10.0, 10.0]);
        let grad: Vec<f64> = data.targets().iter().map(|y| -y).collect();
        let hess = vec![1.0; 2];
        let params = TreeParams {
            max_depth: 0,
            lambda: 2.0,
            ..Default::default()
        };
        let tree = RegressionTree::fit_gradients(&data, &grad, &hess, &[0, 1], &[0], params);
        // weight = -G/(H+lambda) = 20/(2+2) = 5.
        assert!((tree.predict_row(&[0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ignores_features_outside_subset() {
        // Feature 0 is informative, feature 1 is noise; restrict to 1.
        let rows_v: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 0.0]).collect();
        let ys: Vec<f64> = (0..10).map(|i| if i < 5 { 1.0 } else { 9.0 }).collect();
        let data = Dataset::from_rows(&rows_v, &ys);
        let rows: Vec<usize> = (0..10).collect();
        let tree = RegressionTree::fit_targets(&data, &rows, &[1], TreeParams::default());
        // Constant feature -> no split possible.
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn two_feature_interaction() {
        // y = 10*(x0 > 0.5) + (x1 > 0.5)
        let mut rows_v = Vec::new();
        let mut ys = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..5 {
                    rows_v.push(vec![a as f64, b as f64]);
                    ys.push(10.0 * a as f64 + b as f64);
                }
            }
        }
        let data = Dataset::from_rows(&rows_v, &ys);
        let rows: Vec<usize> = (0..data.n_rows()).collect();
        let tree = RegressionTree::fit_targets(&data, &rows, &[0, 1], TreeParams::default());
        for (row, want) in [
            (vec![0.0, 0.0], 0.0),
            (vec![0.0, 1.0], 1.0),
            (vec![1.0, 0.0], 10.0),
            (vec![1.0, 1.0], 11.0),
        ] {
            assert!((tree.predict_row(&row) - want).abs() < 1e-9);
        }
    }
}
