//! Random forest regression: bagged mean-leaf trees with per-tree feature
//! subsampling, fit in parallel via `ceal-par`.
//!
//! The paper (§2.2) names random forests alongside boosted trees as the
//! traditional few-sample-friendly models; the forest serves as an
//! alternative surrogate in the ablation benches.

use crate::binned::{BinnedDataset, DEFAULT_MAX_BINS};
use crate::dataset::Dataset;
use crate::flat::FlatTrees;
use crate::tree::{RegressionTree, TreeParams};
use crate::Regressor;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Hyperparameters for [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Tree growth parameters (deeper than boosting's — bagging wants
    /// low-bias base learners).
    pub tree: TreeParams,
    /// Fraction of features considered by each tree, in (0, 1].
    pub colsample: f64,
    /// RNG seed for bootstrap and feature sampling.
    pub seed: u64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_trees: 100,
            tree: TreeParams {
                max_depth: 10,
                min_child_weight: 0.0,
                lambda: 0.0,
                gamma: 0.0,
                min_samples_leaf: 2,
            },
            colsample: 0.8,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    params: RandomForestParams,
    trees: Vec<RegressionTree>,
    /// SoA mirror of `trees`, rebuilt at the end of `fit`; prediction
    /// walks this, never the enum nodes.
    flat: FlatTrees,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(params: RandomForestParams) -> Self {
        Self {
            params,
            trees: Vec::new(),
            flat: FlatTrees::default(),
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees, in bagging order.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit a forest to an empty dataset");
        let n = data.n_rows();
        let p = data.n_features();
        let p_sub = ((p as f64 * self.params.colsample).round() as usize).clamp(1, p.max(1));

        // Bin features and derive mean-leaf gradients (`g = -y`, `h = 1`,
        // `lambda = 0`) once; every tree shares them.
        let binned = BinnedDataset::from_dataset(data, DEFAULT_MAX_BINS);
        let grad: Vec<f64> = data.targets().iter().map(|y| -y).collect();
        let hess = vec![1.0; n];
        let tree_params = TreeParams {
            lambda: 0.0,
            ..self.params.tree
        };

        // Pre-draw per-tree seeds so tree fitting can run in parallel while
        // remaining deterministic.
        let mut seed_rng = ChaCha8Rng::seed_from_u64(self.params.seed);
        let tree_seeds: Vec<u64> = (0..self.params.n_trees).map(|_| seed_rng.gen()).collect();

        self.trees = ceal_par::parallel_map(&tree_seeds, |&seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let mut feats: Vec<usize> = (0..p).collect();
            feats.shuffle(&mut rng);
            feats.truncate(p_sub);
            RegressionTree::fit_binned(&binned, &grad, &hess, &rows, &feats, tree_params)
        });
        self.flat = FlatTrees::from_trees(&self.trees);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.flat.predict_row_sum(row) / self.trees.len() as f64
    }

    fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        if self.trees.is_empty() {
            return vec![0.0; data.n_rows()];
        }
        let scale = self.trees.len() as f64;
        let mut out = self.flat.predict_batch_sum(data);
        for y in &mut out {
            *y /= scale;
        }
        out
    }

    fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn synthetic(n: usize) -> Dataset {
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let x0 = (i % 23) as f64 / 23.0;
            let x1 = (i % 13) as f64 / 13.0;
            rows.push(vec![x0, x1]);
            ys.push((6.0 * x0).sin() + 2.0 * x1);
        }
        Dataset::from_rows(&rows, &ys)
    }

    #[test]
    fn fits_with_reasonable_accuracy() {
        let data = synthetic(300);
        let mut model = RandomForest::new(RandomForestParams::default());
        model.fit(&data);
        let preds = model.predict_batch(&data);
        assert!(r2(data.targets(), &preds) > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = synthetic(100);
        let params = RandomForestParams {
            n_trees: 20,
            seed: 9,
            ..Default::default()
        };
        let mut a = RandomForest::new(params);
        let mut b = RandomForest::new(params);
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict_batch(&data), b.predict_batch(&data));
    }

    #[test]
    fn unfitted_predicts_zero() {
        let model = RandomForest::new(RandomForestParams::default());
        assert!(!model.is_fitted());
        assert_eq!(model.predict_row(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn builds_requested_number_of_trees() {
        let data = synthetic(50);
        let mut model = RandomForest::new(RandomForestParams {
            n_trees: 7,
            ..Default::default()
        });
        model.fit(&data);
        assert_eq!(model.n_trees(), 7);
    }

    #[test]
    fn predictions_within_target_range() {
        // Mean-leaf trees cannot extrapolate beyond observed targets.
        let data = synthetic(200);
        let mut model = RandomForest::new(RandomForestParams::default());
        model.fit(&data);
        let lo = data.targets().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data
            .targets()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        for probe in [[0.0, 0.0], [0.5, 0.5], [1.0, 1.0], [2.0, -1.0]] {
            let p = model.predict_row(&probe);
            assert!(
                p >= lo - 1e-9 && p <= hi + 1e-9,
                "prediction {p} escapes [{lo}, {hi}]"
            );
        }
    }
}
