//! ML substrate for the CEAL reproduction.
//!
//! The paper trains its surrogate models with `xgboost.XGBRegressor`; this
//! crate provides a from-scratch equivalent suitable for the small-sample
//! regimes auto-tuning operates in (tens to hundreds of samples):
//!
//! * [`GradientBoosting`] — XGBoost-style boosted regression trees
//!   (second-order gain with `lambda`/`gamma`/`min_child_weight`
//!   regularization, shrinkage, row and column subsampling).
//! * [`RandomForest`] — bagged trees, fit in parallel via `ceal-par`.
//! * [`KnnRegressor`] and [`Ridge`] — used by the Didona-style ensemble
//!   ablations (§8.2 of the paper).
//! * [`metrics`] — MdAPE, RMSE, R², Spearman rank correlation.
//! * [`cv`] — k-fold cross-validation over any [`Regressor`].
//!
//! All randomized fitting is seeded explicitly so experiments are exactly
//! reproducible.

pub mod binned;
pub mod cv;
pub mod dataset;
pub mod flat;
pub mod forest;
pub mod gbt;
pub mod gp;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod tree;

pub use binned::{BinnedDataset, DEFAULT_MAX_BINS};
pub use dataset::Dataset;
pub use flat::FlatTrees;
pub use forest::{RandomForest, RandomForestParams};
pub use gbt::{GbtParams, GradientBoosting};
pub use gp::{expected_improvement, GaussianProcess, GpParams};
pub use knn::KnnRegressor;
pub use linear::Ridge;
pub use tree::{RegressionTree, TreeParams};

/// A trainable regression model mapping feature rows to a scalar target.
///
/// Object-safe so the auto-tuner can swap surrogates (boosted trees by
/// default, forest/k-NN in the ablation benches) behind `Box<dyn Regressor>`.
pub trait Regressor: Send + Sync {
    /// Fits the model to `data`, replacing any previous fit.
    fn fit(&mut self, data: &Dataset);
    /// Predicts the target for a single feature row.
    fn predict_row(&self, row: &[f64]) -> f64;
    /// Predicts targets for every row of `data`.
    fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        (0..data.n_rows())
            .map(|i| self.predict_row(data.row(i)))
            .collect()
    }
    /// True once `fit` has been called with at least one row.
    fn is_fitted(&self) -> bool;
}
