//! A minimal spin lock with a guard-based safe interface.
//!
//! Modeled on *Rust Atomics and Locks* chapter 4: `swap`-based acquire with
//! acquire ordering, release store on unlock, and `spin_loop` hints while
//! contended. Intended only for critical sections of a few instructions
//! (e.g. the simulator's shared statistics counters); anything longer should
//! use `parking_lot::Mutex`.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A test-and-set spin lock protecting a value of type `T`.
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock guarantees exclusive access to `value`; `T: Send` is
// required because the value may be dropped/accessed from another thread.
unsafe impl<T: Send> Sync for SpinLock<T> {}
unsafe impl<T: Send> Send for SpinLock<T> {}

/// RAII guard; the lock is released when the guard drops.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    /// Creates an unlocked spin lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning until it is available.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        while self.locked.swap(true, Ordering::Acquire) {
            // Spin read-only until the lock looks free to avoid cache-line
            // ping-pong from repeated atomic swaps.
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
        SpinGuard { lock: self }
    }

    /// Attempts to acquire the lock without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self.locked.swap(true, Ordering::Acquire) {
            None
        } else {
            Some(SpinGuard { lock: self })
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Returns a mutable reference to the inner value.
    ///
    /// Requires `&mut self`, so no locking is necessary.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: holding the guard means we hold the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: holding the guard means we hold the lock exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn guards_exclusive_access() {
        let lock = SpinLock::new(0u64);
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.lock(), 80_000);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = SpinLock::new(5);
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert_eq!(*lock.try_lock().expect("free after drop"), 5);
    }

    #[test]
    fn into_inner_returns_value() {
        let lock = SpinLock::new(vec![1, 2, 3]);
        assert_eq!(lock.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut lock = SpinLock::new(7);
        *lock.get_mut() = 9;
        assert_eq!(*lock.lock(), 9);
    }
}
