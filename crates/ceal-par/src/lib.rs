//! Parallel-execution substrate for the CEAL reproduction.
//!
//! The auto-tuner measures batches of workflow configurations, the ML crate
//! searches tree splits across features, and the experiment harness repeats
//! randomized algorithm runs hundreds of times — all embarrassingly parallel
//! workloads. This crate provides the small set of primitives they share:
//!
//! * [`ThreadPool`] — a fixed-size work-sharing pool built on crossbeam
//!   channels, for long-lived background execution.
//! * [`parallel_map`] / [`parallel_for_each`] — scoped fork-join over slices
//!   (no `'static` bound on the closure or data), chunked to amortize spawn
//!   cost.
//! * [`SpinLock`] — a minimal test-and-set spin lock used where critical
//!   sections are a few instructions long (following *Rust Atomics and
//!   Locks*, ch. 4).
//!
//! Everything here is deterministic in *results*: `parallel_map` returns
//! outputs in input order regardless of scheduling.

mod pool;
mod scope;
mod spin;

pub use pool::{ThreadPool, WaitGroup};
pub use scope::{
    available_threads, chunk_count, parallel_for_each, parallel_map, parallel_map_indexed,
};
pub use spin::SpinLock;
