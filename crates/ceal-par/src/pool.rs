//! A fixed-size work-sharing thread pool.
//!
//! Jobs are boxed closures pushed onto a crossbeam MPMC channel; worker
//! threads pop and run them. Dropping the pool closes the channel and joins
//! all workers, so no job submitted before the drop is lost. A [`WaitGroup`]
//! lets callers block until a batch of submitted jobs has completed without
//! tearing the pool down.

use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing submitted jobs FIFO.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Creates a pool with `size` worker threads (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("ceal-pool-{i}"))
                    .spawn(move || {
                        // The loop ends when every sender is dropped.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            size,
        }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(crate::available_threads())
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submits a job for execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool sender present until drop")
            .send(Box::new(job))
            .expect("pool workers alive until drop");
    }

    /// Submits a job tracked by `wg`; `wg.wait()` blocks until all tracked
    /// jobs (across any number of `execute_tracked` calls) have finished.
    pub fn execute_tracked<F: FnOnce() + Send + 'static>(&self, wg: &WaitGroup, job: F) {
        let token = wg.add();
        self.execute(move || {
            job();
            drop(token);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain remaining jobs and exit.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[derive(Default)]
struct WgState {
    count: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Counts outstanding jobs; `wait` blocks until the count returns to zero.
#[derive(Clone, Default)]
pub struct WaitGroup {
    state: Arc<WgState>,
}

/// Token representing one outstanding job; dropping it decrements the count.
pub struct WgToken {
    state: Arc<WgState>,
}

impl WaitGroup {
    /// Creates an empty wait group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one outstanding job.
    pub fn add(&self) -> WgToken {
        self.state.count.fetch_add(1, Ordering::AcqRel);
        WgToken {
            state: Arc::clone(&self.state),
        }
    }

    /// Blocks until every registered job's token has been dropped.
    pub fn wait(&self) {
        let mut guard = self.state.lock.lock().expect("wait-group mutex poisoned");
        while self.state.count.load(Ordering::Acquire) != 0 {
            guard = self
                .state
                .cv
                .wait(guard)
                .expect("wait-group mutex poisoned");
        }
    }
}

impl Drop for WgToken {
    fn drop(&mut self) {
        if self.state.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.state.lock.lock().expect("wait-group mutex poisoned");
            self.state.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs_before_drop() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(4);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins workers after draining
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_group_blocks_until_batch_done() {
        let pool = ThreadPool::new(3);
        let wg = WaitGroup::new();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.execute_tracked(&wg, move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        wg.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_wait_group_returns_immediately() {
        WaitGroup::new().wait();
    }

    #[test]
    fn pool_size_is_at_least_one() {
        assert_eq!(ThreadPool::new(0).size(), 1);
    }

    #[test]
    fn wait_group_reusable_across_batches() {
        let pool = ThreadPool::new(2);
        let wg = WaitGroup::new();
        let counter = Arc::new(AtomicU64::new(0));
        for batch in 0..3 {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.execute_tracked(&wg, move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            wg.wait();
            assert_eq!(counter.load(Ordering::Relaxed), (batch + 1) * 10);
        }
    }
}
