//! Scoped fork-join parallelism over slices.
//!
//! Built directly on `std::thread::scope`, so closures may borrow from the
//! caller's stack (no `'static` bound). Work is split into contiguous chunks
//! — one per thread by default — which keeps spawn overhead negligible for
//! the coarse-grained tasks this workspace runs (simulating a workflow
//! configuration, training a model, one repetition of a tuning algorithm).
//!
//! Results are written into pre-sized output slots, so `parallel_map`
//! returns outputs in input order regardless of thread scheduling.

/// Number of worker threads to use by default.
///
/// Honors the `CEAL_THREADS` environment variable when set (useful to make
/// benchmarks and tests deterministic in CI), otherwise the machine's
/// available parallelism.
pub fn available_threads() -> usize {
    if let Ok(v) = std::env::var("CEAL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `len` items into at most `threads` contiguous chunks.
pub fn chunk_count(len: usize, threads: usize) -> usize {
    len.min(threads.max(1)).max(1)
}

/// Applies `f` to every element of `items` in parallel, returning results in
/// input order. Falls back to a sequential loop for small inputs or a single
/// available thread.
pub fn parallel_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    parallel_map_indexed(items, |_, item| f(item))
}

/// Like [`parallel_map`] but the closure also receives the element index.
pub fn parallel_map_indexed<T: Sync, R: Send, F: Fn(usize, &T) -> R + Sync>(
    items: &[T],
    f: F,
) -> Vec<R> {
    let threads = available_threads();
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 || n == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let chunks = chunk_count(n, threads);
    let chunk_size = n.div_ceil(chunks);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    std::thread::scope(|s| {
        // Pair each input chunk with its output chunk; both are disjoint,
        // so each spawned thread owns its slice exclusively.
        let mut rest: &mut [Option<R>] = &mut out;
        let mut offset = 0usize;
        let f = &f;
        while offset < n {
            let take = chunk_size.min(n - offset);
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let input = &items[offset..offset + take];
            let base = offset;
            s.spawn(move || {
                for (k, (slot, item)) in head.iter_mut().zip(input).enumerate() {
                    *slot = Some(f(base + k, item));
                }
            });
            offset += take;
        }
    });

    out.into_iter()
        .map(|r| r.expect("every slot filled by its chunk"))
        .collect()
}

/// Runs `f` on every element in parallel for its side effects.
pub fn parallel_for_each<T: Sync, F: Fn(&T) + Sync>(items: &[T], f: F) {
    let _ = parallel_map(items, |t| f(t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&input, |x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |x| x + 1).is_empty());
        assert_eq!(parallel_map(&[41], |x| x + 1), vec![42]);
    }

    #[test]
    fn indexed_map_sees_correct_indices() {
        let input = vec!["a"; 257];
        let out = parallel_map_indexed(&input, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything_once() {
        let input: Vec<usize> = (0..500).collect();
        let count = AtomicUsize::new(0);
        parallel_for_each(&input, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn closures_may_borrow_locals() {
        let factor = 3u64;
        let input: Vec<u64> = (0..64).collect();
        let out = parallel_map(&input, |x| x * factor);
        assert_eq!(out[10], 30);
    }

    #[test]
    fn chunk_count_bounds() {
        assert_eq!(chunk_count(0, 8), 1);
        assert_eq!(chunk_count(3, 8), 3);
        assert_eq!(chunk_count(100, 8), 8);
        assert_eq!(chunk_count(100, 0), 1);
    }
}
