//! Edge-case and robustness tests of the tuning algorithms: degenerate
//! budgets, pool exhaustion, and ablation-knob behaviour.

use ceal_core::{
    sample_pool, ActiveLearning, Alph, Autotuner, Ceal, CealParams, EnsembleKind, EnsembleTuner,
    Geist, PoolOracle, RandomSampling, SimOracle, SurrogateKind, SwitchMode,
};
use ceal_sim::{Objective, Simulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

fn fixture() -> &'static (Vec<Vec<i64>>, PoolOracle) {
    static FIX: OnceLock<(Vec<Vec<i64>>, PoolOracle)> = OnceLock::new();
    FIX.get_or_init(|| {
        let spec = ceal_apps::hs();
        let sim = Simulator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let pool = sample_pool(&spec, &sim.platform, 120, &mut rng);
        let oracle = PoolOracle::precompute(
            SimOracle::new(sim, spec, Objective::ExecutionTime, 2),
            &pool,
        );
        (pool, oracle)
    })
}

fn all_algorithms() -> Vec<Box<dyn Autotuner>> {
    vec![
        Box::new(RandomSampling),
        Box::new(ActiveLearning::default()),
        Box::new(Geist::default()),
        Box::new(Ceal::new(CealParams::without_history())),
        Box::new(Alph::new()),
        Box::new(EnsembleTuner::new(EnsembleKind::Knn)),
        Box::new(EnsembleTuner::new(EnsembleKind::HyBoost)),
        Box::new(EnsembleTuner::new(EnsembleKind::Probing)),
    ]
}

#[test]
fn minimal_budget_is_survivable_for_every_algorithm() {
    let (pool, oracle) = fixture();
    for algo in all_algorithms() {
        for budget in [1usize, 2, 3] {
            let run = algo.run(oracle, pool, budget, 0);
            assert!(
                run.runs_used() >= 1 && run.runs_used() <= budget.max(1),
                "{} used {} runs for budget {budget}",
                algo.name(),
                run.runs_used()
            );
            assert_eq!(run.pool_scores.len(), pool.len());
            assert!(pool.contains(&run.best_predicted));
        }
    }
}

#[test]
fn budget_larger_than_pool_stops_at_pool() {
    let (pool, oracle) = fixture();
    for algo in [
        Box::new(RandomSampling) as Box<dyn Autotuner>,
        Box::new(ActiveLearning::default()),
    ] {
        let run = algo.run(oracle, pool, 500, 0);
        assert!(run.runs_used() <= pool.len());
    }
}

#[test]
fn no_configuration_is_measured_twice() {
    let (pool, oracle) = fixture();
    for algo in all_algorithms() {
        let run = algo.run(oracle, pool, 30, 1);
        let mut configs: Vec<&Vec<i64>> = run.measured.iter().map(|m| &m.config).collect();
        let before = configs.len();
        configs.sort();
        configs.dedup();
        assert_eq!(
            configs.len(),
            before,
            "{} re-measured a config",
            algo.name()
        );
    }
}

#[test]
fn switch_modes_change_behaviour() {
    let (pool, oracle) = fixture();
    let runs: Vec<_> = [
        SwitchMode::Dynamic,
        SwitchMode::NeverSwitch,
        SwitchMode::Immediate,
    ]
    .into_iter()
    .map(|mode| {
        let ceal = Ceal::new(CealParams {
            switch_mode: mode,
            ..CealParams::without_history()
        });
        ceal.run(oracle, pool, 40, 3)
    })
    .collect();
    // NeverSwitch selects with M_L throughout; Immediate with M_H from
    // iteration 2 — their sample sets should differ from each other.
    let sets: Vec<Vec<&Vec<i64>>> = runs
        .iter()
        .map(|r| r.measured.iter().map(|m| &m.config).collect())
        .collect();
    assert_ne!(sets[1], sets[2], "switch mode had no effect on selection");
}

#[test]
fn surrogate_kinds_all_work_inside_ceal() {
    let (pool, oracle) = fixture();
    for kind in [
        SurrogateKind::BoostedTrees,
        SurrogateKind::RandomForest,
        SurrogateKind::Knn,
    ] {
        let ceal = Ceal::new(CealParams {
            surrogate: kind,
            ..CealParams::without_history()
        });
        let run = ceal.run(oracle, pool, 30, 0);
        assert!(run.pool_scores.iter().all(|s| s.is_finite()));
    }
}

#[test]
fn geist_full_exploration_fraction_degenerates_to_random() {
    let (pool, oracle) = fixture();
    let geist = Geist {
        explore_fraction: 1.0,
        ..Geist::default()
    };
    let run = geist.run(oracle, pool, 25, 0);
    assert_eq!(run.runs_used(), 25);
}

#[test]
fn alph_scores_entire_pool_with_augmented_features() {
    let (pool, oracle) = fixture();
    let run = Alph::new().run(oracle, pool, 30, 0);
    assert_eq!(run.pool_scores.len(), pool.len());
    assert!(run.pool_scores.iter().all(|s| s.is_finite() && *s > 0.0));
}
