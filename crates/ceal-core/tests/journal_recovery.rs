//! Crash-recovery tests of the write-ahead measurement journal.
//!
//! The durability contract under test: whatever byte the process dies at,
//! reopening the journal recovers exactly the longest valid prefix of
//! records, the journal stays appendable, and a resumed campaign replays
//! the recovered measurements for free while paying only for what the
//! crash lost — finishing with the same result as a crash-free run.

use ceal_core::{
    prepare_campaign, sample_pool, Autotuner, CampaignId, Ceal, CealParams, Journal, JournalRecord,
    JournalingOracle, MeasureError, Measurement, Oracle, PoolOracle, RandomSampling, SimOracle,
    SoloMeasurement,
};
use ceal_sim::{Objective, Platform, Simulator, WorkflowSpec};
use ceal_testutil::unique_temp_path;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn fixture() -> &'static (Vec<Vec<i64>>, PoolOracle) {
    static FIX: OnceLock<(Vec<Vec<i64>>, PoolOracle)> = OnceLock::new();
    FIX.get_or_init(|| {
        let spec = ceal_apps::hs();
        let sim = Simulator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let pool = sample_pool(&spec, &sim.platform, 100, &mut rng);
        let oracle = PoolOracle::precompute(
            SimOracle::new(sim, spec, Objective::ExecutionTime, 2021),
            &pool,
        );
        (pool, oracle)
    })
}

/// Counts how many measurements actually reach the wrapped oracle — i.e.
/// how many the campaign *pays* for after journal replay.
struct CountingOracle<'a> {
    inner: &'a PoolOracle,
    coupled: AtomicU64,
    solo: AtomicU64,
}

impl<'a> CountingOracle<'a> {
    fn new(inner: &'a PoolOracle) -> Self {
        Self {
            inner,
            coupled: AtomicU64::new(0),
            solo: AtomicU64::new(0),
        }
    }
}

impl Oracle for CountingOracle<'_> {
    fn spec(&self) -> &WorkflowSpec {
        self.inner.spec()
    }
    fn platform(&self) -> &Platform {
        self.inner.platform()
    }
    fn objective(&self) -> Objective {
        self.inner.objective()
    }
    fn try_measure(&self, config: &[i64]) -> Result<Measurement, MeasureError> {
        self.coupled.fetch_add(1, Ordering::Relaxed);
        self.inner.try_measure(config)
    }
    fn try_measure_component(
        &self,
        component: usize,
        values: &[i64],
    ) -> Result<SoloMeasurement, MeasureError> {
        self.solo.fetch_add(1, Ordering::Relaxed);
        self.inner.try_measure_component(component, values)
    }
}

fn campaign_id(algo: &str, budget: u64, seed: u64) -> CampaignId {
    CampaignId {
        workflow: "HS".into(),
        objective: "exec".into(),
        algo: algo.into(),
        budget,
        pool: 100,
        seed,
        failure_rate: 0.0,
        fault_seed: 0,
    }
}

/// Truncate a journal at *every* byte offset and reopen: recovery must
/// always yield the longest valid record prefix, report the torn bytes,
/// and leave the file appendable.
#[test]
fn truncation_at_every_offset_recovers_longest_valid_prefix() {
    // Build a reference journal, tracking the byte boundary after each
    // record so we know exactly which prefix every offset should yield.
    let base = unique_temp_path("ceal-torn-base", "wal");
    let recs = vec![
        JournalRecord::Start(campaign_id("rs", 5, 0)),
        JournalRecord::Solo {
            component: 0,
            values: vec![8, 2],
            value: 3.25,
            exec_time: 3.25,
            computer_time: 0.5,
        },
        JournalRecord::Coupled {
            config: vec![16, 4, 1, 2],
            value: 7.5,
            exec_time: 7.5,
            computer_time: 1.0,
            attempt: 0,
        },
        JournalRecord::Marker("round-1".into()),
        JournalRecord::Coupled {
            config: vec![32, 8, 2, 4],
            value: 6.0,
            exec_time: 6.0,
            computer_time: 0.9,
            attempt: 2,
        },
    ];
    let mut boundaries = vec![8u64]; // after the magic, before any record
    {
        let (mut j, _) = Journal::open(&base).expect("open base");
        for r in &recs {
            j.append(r).expect("append");
            boundaries.push(std::fs::metadata(&base).expect("stat").len());
        }
    }
    let bytes = std::fs::read(&base).expect("read base");
    assert_eq!(*boundaries.last().unwrap(), bytes.len() as u64);

    let torn = unique_temp_path("ceal-torn-cut", "wal");
    for cut in 0..=bytes.len() {
        std::fs::write(&torn, &bytes[..cut]).expect("write truncated copy");
        let (mut j, report) = Journal::open(&torn).expect("reopen truncated");

        // Longest boundary at or below the cut decides the surviving prefix.
        let n = boundaries.iter().filter(|b| **b <= cut as u64).count();
        let (expect, expect_torn) = if n == 0 {
            (0, cut as u64) // shorter than the magic: reset to fresh
        } else {
            (n - 1, cut as u64 - boundaries[n - 1])
        };
        assert_eq!(
            report.records,
            recs[..expect],
            "cut at byte {cut} must recover exactly {expect} record(s)"
        );
        assert_eq!(
            report.truncated_bytes, expect_torn,
            "cut at byte {cut} must report the torn tail"
        );

        // The recovered journal must accept appends and round-trip them.
        let marker = JournalRecord::Marker("post-crash".into());
        j.append(&marker).expect("append after recovery");
        drop(j);
        let (_, report) = Journal::open(&torn).expect("reopen after append");
        let mut expected: Vec<JournalRecord> = recs[..expect].to_vec();
        expected.push(marker);
        assert_eq!(report.records, expected, "cut at byte {cut}");
    }
    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&torn).ok();
}

/// A finished campaign replayed from its journal costs zero oracle calls
/// and reproduces the identical recommendation.
#[test]
fn completed_campaign_replays_for_free() {
    let (pool, oracle) = fixture();
    let path = unique_temp_path("ceal-replay-free", "wal");
    let id = campaign_id("ceal", 8, 3);
    let algo = Ceal::new(CealParams::without_history());

    let (first, first_paid_coupled, first_paid_solo) = {
        let (mut journal, report) = Journal::open(&path).expect("open");
        let records = prepare_campaign(&mut journal, report.records, &id, false).expect("fresh");
        let counting = CountingOracle::new(oracle);
        let journaling = JournalingOracle::new(&counting, journal, &records);
        let run = algo
            .try_run(&journaling, pool, 8, 3)
            .expect("first run succeeds");
        let stats = journaling.stats();
        assert_eq!(stats.replayed_coupled + stats.replayed_solo, 0);
        assert_eq!(
            stats.fresh_coupled,
            counting.coupled.load(Ordering::Relaxed)
        );
        assert_eq!(stats.fresh_solo, counting.solo.load(Ordering::Relaxed));
        (run, stats.fresh_coupled, stats.fresh_solo)
    };
    assert!(first_paid_coupled > 0 && first_paid_solo > 0);

    let (mut journal, report) = Journal::open(&path).expect("reopen");
    let records = prepare_campaign(&mut journal, report.records, &id, true).expect("resume");
    let counting = CountingOracle::new(oracle);
    let journaling = JournalingOracle::new(&counting, journal, &records);
    let second = algo
        .try_run(&journaling, pool, 8, 3)
        .expect("replayed run succeeds");

    assert_eq!(counting.coupled.load(Ordering::Relaxed), 0, "no re-billing");
    assert_eq!(counting.solo.load(Ordering::Relaxed), 0, "no re-billing");
    let stats = journaling.stats();
    assert_eq!(stats.fresh_coupled + stats.fresh_solo, 0);
    assert_eq!(stats.replayed_coupled, first_paid_coupled);
    assert_eq!(stats.replayed_solo, first_paid_solo);
    assert_eq!(second.best_predicted, first.best_predicted);
    assert_eq!(second.runs_used(), first.runs_used());
    std::fs::remove_file(&path).ok();
}

/// Kill a campaign by tearing its journal mid-file, resume, and check the
/// crash-recovery invariant: the resumed campaign pays only for what the
/// crash lost and finishes exactly like a crash-free run.
#[test]
fn torn_journal_resume_is_prefix_consistent_with_crash_free_run() {
    let (pool, oracle) = fixture();
    let budget = 12;
    let seed = 7;
    let crash_free = RandomSampling
        .try_run(oracle, pool, budget, seed)
        .expect("crash-free run");

    // Full journaled run to obtain the on-disk record sequence.
    let path = unique_temp_path("ceal-torn-resume", "wal");
    let id = campaign_id("rs", budget as u64, seed);
    {
        let (mut journal, report) = Journal::open(&path).expect("open");
        let records = prepare_campaign(&mut journal, report.records, &id, false).expect("fresh");
        let journaling = JournalingOracle::new(oracle, journal, &records);
        RandomSampling
            .try_run(&journaling, pool, budget, seed)
            .expect("journaled run");
        assert_eq!(journaling.stats().fresh_coupled, budget as u64);
    }
    let full = std::fs::read(&path).expect("read journal");
    let full_records = Journal::open(&path).expect("reopen full").1.records;

    // Tear it at 60% — mid-record with overwhelming probability.
    let cut = full.len() * 6 / 10;
    std::fs::write(&path, &full[..cut]).expect("tear");

    let (mut journal, report) = Journal::open(&path).expect("reopen torn");
    assert!(
        report.records.len() < full_records.len(),
        "tear lost records"
    );
    assert_eq!(
        report.records,
        full_records[..report.records.len()],
        "recovery must be a prefix of the crash-free sequence"
    );
    let survived = report
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Coupled { .. }))
        .count() as u64;

    let records = prepare_campaign(&mut journal, report.records, &id, true).expect("resume");
    let counting = CountingOracle::new(oracle);
    let journaling = JournalingOracle::new(&counting, journal, &records);
    let resumed = RandomSampling
        .try_run(&journaling, pool, budget, seed)
        .expect("resumed run");

    let stats = journaling.stats();
    assert_eq!(
        stats.replayed_coupled, survived,
        "survivors replay for free"
    );
    assert_eq!(
        stats.fresh_coupled,
        budget as u64 - survived,
        "only the lost measurements are re-paid"
    );
    assert_eq!(
        counting.coupled.load(Ordering::Relaxed),
        budget as u64 - survived
    );
    assert_eq!(resumed.best_predicted, crash_free.best_predicted);
    assert_eq!(resumed.runs_used(), crash_free.runs_used());

    // After the resumed run the journal holds the full sequence again.
    let healed = Journal::open(&path).expect("reopen healed").1.records;
    assert_eq!(healed, full_records);
    std::fs::remove_file(&path).ok();
}
