//! Chaos tests: kill a journaled campaign at every crash point in the
//! journal's append path, at several depths into the run, then resume and
//! assert the crash-recovery invariant — the recovered journal is a prefix
//! of the crash-free sequence, durable measurements are never re-billed,
//! and the resumed campaign finishes exactly like a crash-free one.
//!
//! Requires the `chaos` feature (compiled crash points):
//! `cargo test -p ceal-core --features chaos --test chaos_recovery`.
#![cfg(feature = "chaos")]

use ceal_core::{
    prepare_campaign, sample_pool, Autotuner, CampaignId, Journal, JournalRecord, JournalingOracle,
    PoolOracle, RandomSampling, SimOracle,
};
use ceal_sim::{Objective, Simulator};
use ceal_testutil::{chaos, unique_temp_path};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The crash-point registry is process-global; the tests in this binary
/// serialize on this so one test's `disarm_all` cannot eat another's trap.
static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

const BUDGET: usize = 10;
const SEED: u64 = 5;

/// Every crash point compiled into `Journal::append`, in program order.
const CRASH_POINTS: &[&str] = &[
    "journal.before_write",
    "journal.mid_write",
    "journal.after_write",
    "journal.after_sync",
];

fn fixture() -> (Vec<Vec<i64>>, PoolOracle) {
    let spec = ceal_apps::hs();
    let sim = Simulator::new();
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let pool = sample_pool(&spec, &sim.platform, 80, &mut rng);
    let oracle = PoolOracle::precompute(
        SimOracle::new(sim, spec, Objective::ExecutionTime, 2021),
        &pool,
    );
    (pool, oracle)
}

fn campaign_id() -> CampaignId {
    CampaignId {
        workflow: "HS".into(),
        objective: "exec".into(),
        algo: "rs".into(),
        budget: BUDGET as u64,
        pool: 80,
        seed: SEED,
        failure_rate: 0.0,
        fault_seed: 0,
    }
}

/// Runs the whole journaled campaign once; returns the tuner's pick.
fn run_campaign(
    oracle: &PoolOracle,
    pool: &[Vec<i64>],
    path: &std::path::Path,
    resume: bool,
) -> (Vec<i64>, ceal_core::ReplayStats) {
    let (mut journal, report) = Journal::open(path).expect("open journal");
    let records =
        prepare_campaign(&mut journal, report.records, &campaign_id(), resume).expect("prepare");
    let journaling = JournalingOracle::new(oracle, journal, &records);
    let run = RandomSampling
        .try_run(&journaling, pool, BUDGET, SEED)
        .expect("campaign runs");
    (run.best_predicted, journaling.stats())
}

#[test]
fn crash_at_every_point_and_depth_recovers_to_the_crash_free_run() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    chaos::silence_crash_panics();
    let (pool, oracle) = fixture();

    // Ground truth: the crash-free journal sequence and recommendation.
    let free_path = unique_temp_path("ceal-chaos-free", "wal");
    let (free_best, free_stats) = run_campaign(&oracle, &pool, &free_path, false);
    assert_eq!(free_stats.fresh_coupled, BUDGET as u64);
    let free_records = Journal::open(&free_path).expect("reopen free").1.records;
    std::fs::remove_file(&free_path).ok();
    // One Start header plus BUDGET coupled measurements.
    assert_eq!(free_records.len(), 1 + BUDGET);

    // Append #1 is the Start header, #2..=#11 the measurements: crash on
    // the header, the first, a middle, and the final append.
    for &point in CRASH_POINTS {
        for nth in [1u64, 2, 6, 1 + BUDGET as u64] {
            let path = unique_temp_path("ceal-chaos-run", "wal");
            chaos::arm_after(point, nth);
            let crashed = catch_unwind(AssertUnwindSafe(|| {
                run_campaign(&oracle, &pool, &path, false)
            }));
            chaos::disarm_all();
            let payload = crashed.expect_err(&format!("{point}@{nth} must crash"));
            assert_eq!(
                chaos::is_crash(payload.as_ref())
                    .expect("a simulated crash")
                    .0,
                point
            );

            // Recovery: whatever survived is a valid prefix. A crash
            // before/inside the write must lose the in-flight record; a
            // crash after it may keep everything (an unwinding "crash"
            // cannot drop bytes already handed to the file).
            let report = Journal::open(&path).expect("reopen after crash").1;
            if matches!(point, "journal.before_write" | "journal.mid_write") {
                assert!(
                    report.records.len() < free_records.len(),
                    "{point}@{nth}: the crash must lose the in-flight record"
                );
            } else {
                assert!(report.records.len() <= free_records.len(), "{point}@{nth}");
            }
            assert_eq!(
                report.records,
                free_records[..report.records.len()],
                "{point}@{nth}: recovery must be a prefix of the crash-free sequence"
            );
            let survived = report
                .records
                .iter()
                .filter(|r| matches!(r, JournalRecord::Coupled { .. }))
                .count() as u64;

            // ...and the resumed campaign replays it for free, pays only
            // for the lost tail, and lands on the crash-free answer.
            let (best, stats) = run_campaign(&oracle, &pool, &path, true);
            assert_eq!(best, free_best, "{point}@{nth}");
            assert_eq!(
                stats.replayed_coupled, survived,
                "{point}@{nth}: durable measurements must not be re-billed"
            );
            assert_eq!(
                stats.replayed_coupled + stats.fresh_coupled,
                BUDGET as u64,
                "{point}@{nth}: the resumed run must total the crash-free budget"
            );

            // The healed journal is byte-for-byte the crash-free sequence.
            let healed = Journal::open(&path).expect("reopen healed").1.records;
            assert_eq!(healed, free_records, "{point}@{nth}");
            std::fs::remove_file(&path).ok();
        }
    }
}

/// A crash *between* campaigns (armed but never hit) must not leak into
/// later journal traffic once disarmed.
#[test]
fn disarmed_points_leave_the_journal_untouched() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    chaos::silence_crash_panics();
    let path = unique_temp_path("ceal-chaos-disarm", "wal");
    chaos::arm_after("journal.before_write", 10_000);
    chaos::disarm_all();
    let (mut j, _) = Journal::open(&path).expect("open");
    j.append(&JournalRecord::Marker("fine".into()))
        .expect("append");
    drop(j);
    assert_eq!(Journal::open(&path).expect("reopen").1.records.len(), 1);
    std::fs::remove_file(&path).ok();
}
