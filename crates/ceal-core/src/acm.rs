//! The analytical coupling model: component models + a combination
//! function (paper §4).
//!
//! Phase 1 of the bootstrapping method trains one cheap ML model per
//! component application from *solo* runs, then combines their predictions
//! with a simple function chosen by the optimization metric:
//!
//! * execution time is bottleneck-dominated → `max` (Eq. 1);
//! * computer time aggregates shares of all components → `sum` (Eq. 2);
//! * throughput-style metrics would use `min`.
//!
//! The combined [`LowFidelityModel`] scores workflow configurations without
//! ever running the workflow — cheap, systematically wrong about coupling
//! effects, but good enough to steer sample collection toward
//! well-performing regions.

use crate::features::FeatureMap;
use crate::history::ComponentHistory;
use ceal_ml::{Dataset, GbtParams, GradientBoosting, Regressor};
use ceal_sim::{Objective, WorkflowSpec};

/// How component predictions combine into a workflow score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineFn {
    /// Bottleneck metric (execution time): the slowest component decides.
    Max,
    /// Bottleneck metric for rates (throughput): the slowest component
    /// decides, from below.
    Min,
    /// Additive metric (computer time, energy): components' shares add up.
    Sum,
}

impl CombineFn {
    /// The combination the paper prescribes for each objective (§4).
    pub fn for_objective(obj: Objective) -> Self {
        match obj {
            Objective::ExecutionTime => CombineFn::Max,
            Objective::ComputerTime => CombineFn::Sum,
        }
    }

    /// Applies the combination to per-component predictions.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn apply(&self, values: &[f64]) -> f64 {
        assert!(!values.is_empty(), "no component predictions to combine");
        match self {
            CombineFn::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            CombineFn::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
            CombineFn::Sum => values.iter().sum(),
        }
    }
}

enum CompModel {
    /// Boosted-tree model over the component's parameters.
    Learned(Box<GradientBoosting>),
    /// Constant prediction (single-configuration or single-sample
    /// components like the GP plotters).
    Constant(f64),
}

/// One performance model per component application, trained on solo
/// samples.
pub struct ComponentModels {
    models: Vec<CompModel>,
    feature_maps: Vec<FeatureMap>,
}

impl ComponentModels {
    /// Fits per-component models from the samples in `data` (paper Alg. 1
    /// lines 1–5). Components with fewer than two distinct samples get a
    /// constant model.
    ///
    /// # Panics
    /// Panics if any component has zero samples.
    pub fn fit(spec: &WorkflowSpec, data: &ComponentHistory, seed: u64) -> Self {
        assert_eq!(
            data.n_components(),
            spec.components.len(),
            "history/component mismatch"
        );
        let mut models = Vec::with_capacity(spec.components.len());
        let mut feature_maps = Vec::with_capacity(spec.components.len());
        for (j, comp) in spec.components.iter().enumerate() {
            let samples = &data.samples[j];
            assert!(
                !samples.is_empty(),
                "component {} has no training samples",
                comp.name()
            );
            let fm = FeatureMap::for_params(comp.params());
            let distinct = {
                let mut vs: Vec<&Vec<i64>> = samples.iter().map(|(v, _)| v).collect();
                vs.sort();
                vs.dedup();
                vs.len()
            };
            let model = if distinct < 2 {
                let mean = samples.iter().map(|(_, y)| *y).sum::<f64>() / samples.len() as f64;
                CompModel::Constant(mean)
            } else {
                let rows: Vec<Vec<f64>> = samples.iter().map(|(v, _)| fm.encode(v)).collect();
                let ys: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
                let mut gbt =
                    GradientBoosting::new(GbtParams::small_sample(seed ^ (j as u64) << 8));
                gbt.fit(&Dataset::from_rows(&rows, &ys));
                CompModel::Learned(Box::new(gbt))
            };
            models.push(model);
            feature_maps.push(fm);
        }
        Self {
            models,
            feature_maps,
        }
    }

    /// Predicts component `j`'s solo objective value for `values`.
    pub fn predict(&self, j: usize, values: &[i64]) -> f64 {
        match &self.models[j] {
            CompModel::Constant(c) => *c,
            CompModel::Learned(gbt) => gbt.predict_row(&self.feature_maps[j].encode(values)),
        }
    }

    /// Number of component models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no component models exist.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// The combined low-fidelity workflow model `M_L` (paper Fig. 3).
pub struct LowFidelityModel {
    /// Per-component solo models (shared so historical models can be
    /// reused across tuning repetitions).
    pub components: std::sync::Arc<ComponentModels>,
    /// The combination function (Eq. 1/2).
    pub combine: CombineFn,
    ranges: Vec<std::ops::Range<usize>>,
}

impl LowFidelityModel {
    /// Assembles the low-fidelity model for `spec`.
    pub fn new(
        spec: &WorkflowSpec,
        components: impl Into<std::sync::Arc<ComponentModels>>,
        combine: CombineFn,
    ) -> Self {
        Self {
            components: components.into(),
            combine,
            ranges: spec.param_ranges(),
        }
    }

    /// Scores one full workflow configuration (lower is better).
    pub fn score(&self, config: &[i64]) -> f64 {
        let preds: Vec<f64> = self
            .ranges
            .iter()
            .enumerate()
            .map(|(j, r)| self.components.predict(j, &config[r.clone()]))
            .collect();
        self.combine.apply(&preds)
    }

    /// Scores many configurations.
    pub fn score_all(&self, configs: &[Vec<i64>]) -> Vec<f64> {
        configs.iter().map(|c| self.score(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{Oracle, SimOracle};
    use ceal_apps::lv;
    use ceal_sim::Simulator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn combine_fns() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(CombineFn::Max.apply(&v), 3.0);
        assert_eq!(CombineFn::Min.apply(&v), 1.0);
        assert_eq!(CombineFn::Sum.apply(&v), 6.0);
        assert_eq!(
            CombineFn::for_objective(Objective::ExecutionTime),
            CombineFn::Max
        );
        assert_eq!(
            CombineFn::for_objective(Objective::ComputerTime),
            CombineFn::Sum
        );
    }

    #[test]
    fn component_models_learn_solo_behaviour() {
        let spec = lv();
        let oracle = SimOracle::new(
            Simulator::noiseless(),
            spec.clone(),
            Objective::ExecutionTime,
            1,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let hist = ComponentHistory::collect(&oracle, 120, &mut rng);
        let models = ComponentModels::fit(&spec, &hist, 0);
        // Model should know that 500 procs beats 8 procs for LAMMPS solo.
        let slow = models.predict(0, &[8, 8, 1]);
        let fast = models.predict(0, &[500, 16, 1]);
        assert!(
            fast < slow,
            "model failed to learn scaling: {fast} !< {slow}"
        );
    }

    #[test]
    fn constant_model_for_single_sample() {
        let spec = lv();
        let mut hist = ComponentHistory::empty(2);
        hist.push(0, vec![100, 10, 1], 42.0);
        hist.push(1, vec![50, 10, 1], 7.0);
        let models = ComponentModels::fit(&spec, &hist, 0);
        assert_eq!(models.predict(0, &[999, 1, 4]), 42.0);
        assert_eq!(models.predict(1, &[2, 1, 1]), 7.0);
    }

    #[test]
    fn low_fidelity_scores_rank_good_before_bad() {
        let spec = lv();
        let oracle = SimOracle::new(
            Simulator::noiseless(),
            spec.clone(),
            Objective::ExecutionTime,
            1,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let hist = ComponentHistory::collect(&oracle, 150, &mut rng);
        let models = ComponentModels::fit(&spec, &hist, 0);
        let ml = LowFidelityModel::new(&spec, models, CombineFn::Max);
        let good = ml.score(&[561, 25, 1, 75, 14, 1]);
        let bad = ml.score(&[4, 2, 1, 4, 2, 1]);
        assert!(good < bad, "low-fidelity ranking inverted: {good} !< {bad}");
        // And the ranking must agree with the true coupled measurement.
        let tg = oracle.measure(&[561, 25, 1, 75, 14, 1]).value;
        let tb = oracle.measure(&[4, 2, 1, 4, 2, 1]).value;
        assert!(tg < tb);
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn fit_rejects_missing_component_data() {
        let spec = lv();
        let hist = ComponentHistory::empty(2);
        ComponentModels::fit(&spec, &hist, 0);
    }
}
