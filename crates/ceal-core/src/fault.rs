//! Job-level fault tolerance for the collector.
//!
//! The paper's auto-tuner enhanced Swift/T with `MPI_Comm_launch` precisely
//! so that a crashed workflow run would not kill the whole tuning campaign
//! (§7.1). This module provides the equivalent for any [`Oracle`]:
//!
//! * [`FaultInjector`] — wraps an oracle and makes a deterministic,
//!   seed-controlled fraction of measurements fail (the testing side:
//!   tuners and collectors can be exercised under failure).
//! * [`RetryingCollector`] — wraps a fallible oracle and retries failed
//!   measurements up to a bound, charging the wasted attempts to the
//!   collection cost exactly as a real campaign would pay for crashed
//!   runs.

use crate::oracle::{MeasureError, Measurement, Oracle, SoloMeasurement};
use crate::retry::RetryPolicy;
use ceal_sim::{Objective, Platform, WorkflowSpec};
use std::sync::atomic::{AtomicU64, Ordering};

/// Error returned when an injected fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementFailed {
    /// Attempt number that failed (1-based).
    pub attempt: u64,
}

impl std::fmt::Display for MeasurementFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "measurement attempt {} crashed", self.attempt)
    }
}

impl std::error::Error for MeasurementFailed {}

/// Wraps an oracle, failing a deterministic fraction of measurement
/// attempts.
///
/// Failures are a pure function of `(config, attempt)`, so retrying the
/// same configuration eventually succeeds — modelling transient job
/// crashes (node failures, launch timeouts) rather than configurations
/// that can never run.
pub struct FaultInjector<'a> {
    inner: &'a dyn Oracle,
    /// Probability in [0, 1) that any given attempt fails.
    failure_rate: f64,
    seed: u64,
    attempts: AtomicU64,
    failures: AtomicU64,
}

impl<'a> FaultInjector<'a> {
    /// Creates an injector failing `failure_rate` of attempts.
    pub fn new(inner: &'a dyn Oracle, failure_rate: f64, seed: u64) -> Self {
        Self {
            inner,
            failure_rate: failure_rate.clamp(0.0, 0.999),
            seed,
            attempts: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// Total attempts observed.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Total injected failures.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    fn roll(&self, config: &[i64], attempt: u64) -> bool {
        // Deterministic hash of (seed, config, attempt) → uniform in [0,1),
        // finalized splitmix64-style for full avalanche (a plain FNV fold
        // barely moves the high bits when only `attempt` changes).
        let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ self.seed;
        for &v in config {
            h ^= v as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64 <= self.failure_rate
    }

    /// Attempts one measurement; fails deterministically per
    /// `(config, attempt)`. An injected crash surfaces as
    /// [`MeasureError::Failed`] (the transient, retryable kind); an
    /// underlying simulator rejection passes through as
    /// [`MeasureError::Sim`] (deterministic — retrying cannot help).
    pub fn try_measure(&self, config: &[i64], attempt: u64) -> Result<Measurement, MeasureError> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        if self.roll(config, attempt) {
            self.failures.fetch_add(1, Ordering::Relaxed);
            Err(MeasureError::Failed(
                MeasurementFailed { attempt }.to_string(),
            ))
        } else {
            self.inner.try_measure(config)
        }
    }
}

/// A fault-tolerant collector: retries failed attempts and bills the
/// wasted runs.
///
/// Implements [`Oracle`] so any tuner runs unchanged on an unreliable
/// testbed; the crashed attempts' cost shows up in
/// [`RetryingCollector::wasted_cost`] (a crashed run still consumed its
/// allocation until the crash — modelled as one full run cost, the
/// worst case). When every attempt the [`RetryPolicy`] allows has failed,
/// [`Oracle::try_measure`] returns
/// [`MeasureError::RetriesExhausted`] — never a panic, so a tuning
/// service or resumable campaign stays alive across a truly dead
/// configuration.
pub struct RetryingCollector<'a> {
    injector: &'a FaultInjector<'a>,
    /// When and how often to retry. Built by [`RetryingCollector::new`] as
    /// a no-delay policy (simulated measurements have no transport to wait
    /// out).
    pub policy: RetryPolicy,
    wasted_exec: AtomicU64,
    wasted_comp: AtomicU64,
}

impl<'a> RetryingCollector<'a> {
    /// Creates a collector retrying up to `max_attempts` times with no
    /// backoff delay.
    pub fn new(injector: &'a FaultInjector<'a>, max_attempts: u64) -> Self {
        Self::with_policy(
            injector,
            RetryPolicy::no_delay(max_attempts.min(u32::MAX as u64) as u32),
        )
    }

    /// Creates a collector with an explicit retry policy.
    pub fn with_policy(injector: &'a FaultInjector<'a>, policy: RetryPolicy) -> Self {
        Self {
            injector,
            policy,
            wasted_exec: AtomicU64::new(0),
            wasted_comp: AtomicU64::new(0),
        }
    }

    /// Maximum attempts per configuration (≥ 1).
    pub fn max_attempts(&self) -> u64 {
        self.policy.max_attempts.max(1) as u64
    }

    /// Cost of crashed attempts in the given objective's units
    /// (milli-units internally, rounded).
    pub fn wasted_cost(&self, objective: Objective) -> f64 {
        let milli = match objective {
            Objective::ExecutionTime => self.wasted_exec.load(Ordering::Relaxed),
            Objective::ComputerTime => self.wasted_comp.load(Ordering::Relaxed),
        };
        milli as f64 / 1000.0
    }

    /// Bills one crashed attempt as one full run of `config`.
    fn bill_waste(&self, config: &[i64]) -> Result<(), MeasureError> {
        let truth = self.injector.inner.try_measure(config)?;
        self.wasted_exec
            .fetch_add((truth.exec_time * 1000.0) as u64, Ordering::Relaxed);
        self.wasted_comp
            .fetch_add((truth.computer_time * 1000.0) as u64, Ordering::Relaxed);
        Ok(())
    }
}

impl Oracle for RetryingCollector<'_> {
    fn spec(&self) -> &WorkflowSpec {
        self.injector.inner.spec()
    }

    fn platform(&self) -> &Platform {
        self.injector.inner.platform()
    }

    fn objective(&self) -> Objective {
        self.injector.inner.objective()
    }

    fn try_measure(&self, config: &[i64]) -> Result<Measurement, MeasureError> {
        let max = self.max_attempts();
        let mut last: Option<String> = None;
        for attempt in 1..=max {
            if attempt > 1 {
                let wait = self
                    .policy
                    .delay_before(attempt.min(u32::MAX as u64) as u32);
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
            match self.injector.try_measure(config, attempt) {
                Ok(m) => return Ok(m),
                // Transient backend failures (injected crashes) are the
                // retryable kind; bill the wasted run and go again.
                Err(MeasureError::Failed(msg)) => {
                    self.bill_waste(config)?;
                    last = Some(msg);
                }
                // Deterministic failures (infeasible configuration) cannot
                // be retried away.
                Err(other) => return Err(other),
            }
        }
        Err(MeasureError::RetriesExhausted {
            attempts: max,
            last: last.expect("max >= 1 implies a recorded failure"),
        })
    }

    fn try_measure_component(
        &self,
        component: usize,
        values: &[i64],
    ) -> Result<SoloMeasurement, MeasureError> {
        // Component runs are short; model them as reliable.
        self.injector.inner.try_measure_component(component, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Autotuner, RandomSampling};
    use crate::oracle::MeasureError;
    use crate::oracle::SimOracle;
    use crate::pool::sample_pool;
    use ceal_sim::Simulator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn base() -> (Vec<Vec<i64>>, SimOracle) {
        let spec = ceal_apps::lv();
        let sim = Simulator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pool = sample_pool(&spec, &sim.platform, 40, &mut rng);
        (pool, SimOracle::new(sim, spec, Objective::ExecutionTime, 3))
    }

    #[test]
    fn injector_fails_roughly_the_requested_fraction() {
        let (pool, oracle) = base();
        let inj = FaultInjector::new(&oracle, 0.3, 7);
        let mut failed = 0;
        for (i, cfg) in pool.iter().cycle().take(400).enumerate() {
            if inj.try_measure(cfg, i as u64).is_err() {
                failed += 1;
            }
        }
        let rate = failed as f64 / 400.0;
        assert!((0.2..0.4).contains(&rate), "observed failure rate {rate}");
        assert_eq!(inj.attempts(), 400);
        assert_eq!(inj.failures(), failed);
    }

    #[test]
    fn failures_are_deterministic_and_transient() {
        let (pool, oracle) = base();
        let inj = FaultInjector::new(&oracle, 0.5, 1);
        let cfg = &pool[0];
        let first = inj.try_measure(cfg, 1).is_err();
        assert_eq!(
            inj.try_measure(cfg, 1).is_err(),
            first,
            "same attempt must repeat"
        );
        // Some attempt within a handful succeeds (transient faults).
        let ok = (1..10).any(|a| inj.try_measure(cfg, a).is_ok());
        assert!(ok, "faults should be transient");
    }

    #[test]
    fn collector_retries_and_bills_waste() {
        let (pool, oracle) = base();
        let inj = FaultInjector::new(&oracle, 0.4, 11);
        let col = RetryingCollector::new(&inj, 10);
        for cfg in &pool {
            let m = col.measure(cfg);
            assert!(m.value > 0.0);
        }
        assert!(inj.failures() > 0, "fixture should have injected failures");
        assert!(col.wasted_cost(Objective::ExecutionTime) > 0.0);
        assert!(col.wasted_cost(Objective::ComputerTime) > 0.0);
    }

    #[test]
    fn tuners_run_unchanged_on_a_flaky_testbed() {
        let (pool, oracle) = base();
        let inj = FaultInjector::new(&oracle, 0.25, 13);
        let col = RetryingCollector::new(&inj, 25);
        let run = RandomSampling.run(&col, &pool, 15, 0);
        assert_eq!(run.runs_used(), 15);
        // Results identical to the reliable oracle: retries hide the faults.
        let reliable = RandomSampling.run(&oracle, &pool, 15, 0);
        assert_eq!(run.best_predicted, reliable.best_predicted);
    }

    #[test]
    fn zero_rate_never_fails() {
        let (pool, oracle) = base();
        let inj = FaultInjector::new(&oracle, 0.0, 0);
        for (i, cfg) in pool.iter().take(50).enumerate() {
            assert!(inj.try_measure(cfg, i as u64).is_ok());
        }
    }

    #[test]
    fn exhausted_retries_surface_as_typed_error() {
        let (pool, oracle) = base();
        // 99.9 % failure rate with one attempt: practically guaranteed.
        let inj = FaultInjector::new(&oracle, 0.999, 2);
        let col = RetryingCollector::new(&inj, 1);
        let err = pool
            .iter()
            .find_map(|cfg| col.try_measure(cfg).err())
            .expect("some config must fail its only attempt");
        match &err {
            MeasureError::RetriesExhausted { attempts, last } => {
                assert_eq!(*attempts, 1);
                assert!(last.contains("crashed"), "last error lacks context: {last}");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // The rendered error keeps the old panic message's context.
        let msg = err.to_string();
        assert!(msg.contains("consecutive attempts"), "{msg}");
        assert!(msg.contains("crashed"), "{msg}");
    }

    #[test]
    fn infeasible_configs_are_not_retried() {
        let (_, oracle) = base();
        let inj = FaultInjector::new(&oracle, 0.0, 0);
        let col = RetryingCollector::new(&inj, 5);
        let before = inj.attempts();
        let err = col
            .try_measure(&[1085, 1, 1, 1085, 1, 1])
            .expect_err("infeasible must fail");
        assert!(matches!(err, MeasureError::Sim(_)), "got {err}");
        assert_eq!(
            inj.attempts() - before,
            1,
            "no retry on deterministic failure"
        );
    }
}
