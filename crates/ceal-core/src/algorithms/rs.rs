//! RS — random-sampling baseline (paper §7.3).
//!
//! Selects all `m` training configurations uniformly at random from the
//! pool, trains the standard boosted-tree surrogate once, and searches the
//! pool with it. The canonical "no intelligence in sample selection"
//! baseline.

use super::{fit_surrogate, measure_indices, random_unmeasured, score_pool, Autotuner, TunerRun};
use crate::features::FeatureMap;
use crate::oracle::{MeasureError, Oracle};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The random-sampling tuner.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSampling;

impl Autotuner for RandomSampling {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn try_run(
        &self,
        oracle: &dyn Oracle,
        pool: &[Vec<i64>],
        budget: usize,
        seed: u64,
    ) -> Result<TunerRun, MeasureError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fm = FeatureMap::for_workflow(oracle.spec());
        let mut measured_idx = vec![false; pool.len()];
        let mut measured = Vec::with_capacity(budget);
        let picks = random_unmeasured(&measured_idx, budget, &mut rng);
        measure_indices(oracle, pool, &picks, &mut measured_idx, &mut measured)?;
        let model = fit_surrogate(&fm, &measured, seed);
        let scores = score_pool(&fm, model.as_ref(), pool);
        Ok(TunerRun::from_scores(pool, scores, measured, Vec::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{best_truth, lv_exec_fixture, truth_of};
    use super::*;

    #[test]
    fn uses_exactly_the_budget() {
        let fix = lv_exec_fixture();
        let run = RandomSampling.run(&fix.oracle, &fix.pool, 25, 0);
        assert_eq!(run.runs_used(), 25);
        assert!(run.component_runs.is_empty());
        assert_eq!(run.pool_scores.len(), fix.pool.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let fix = lv_exec_fixture();
        let a = RandomSampling.run(&fix.oracle, &fix.pool, 20, 7);
        let b = RandomSampling.run(&fix.oracle, &fix.pool, 20, 7);
        assert_eq!(a.best_predicted, b.best_predicted);
        assert_eq!(a.pool_scores, b.pool_scores);
    }

    #[test]
    fn different_seeds_choose_different_samples() {
        let fix = lv_exec_fixture();
        let a = RandomSampling.run(&fix.oracle, &fix.pool, 20, 1);
        let b = RandomSampling.run(&fix.oracle, &fix.pool, 20, 2);
        let ca: Vec<_> = a.measured.iter().map(|m| m.config.clone()).collect();
        let cb: Vec<_> = b.measured.iter().map(|m| m.config.clone()).collect();
        assert_ne!(ca, cb);
    }

    #[test]
    fn recommendation_beats_pool_median() {
        let fix = lv_exec_fixture();
        let mut sorted = fix.truth.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        // Even random sampling should recommend something decent on
        // average; check a few seeds.
        let mut wins = 0;
        for seed in 0..5 {
            let run = RandomSampling.run(&fix.oracle, &fix.pool, 40, seed);
            if truth_of(fix, &run.best_predicted) < median {
                wins += 1;
            }
        }
        assert!(wins >= 4, "RS recommendations unusually poor: {wins}/5");
        let _ = best_truth(fix);
    }
}
