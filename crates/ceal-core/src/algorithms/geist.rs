//! GEIST — graph-guided semi-supervised sample selection (paper §7.3,
//! after Thiagarajan et al., ICS '18).
//!
//! GEIST builds a *parameter graph* over candidate configurations and uses
//! semi-supervised label propagation to estimate which unmeasured
//! configurations are likely to be "optimal" (defined as the top 5 % of
//! performance). Each iteration measures the configurations with the
//! highest propagated probability of being optimal, mixed with a small
//! exploration fraction.
//!
//! In the original, nodes are the full discretized space; our spaces are
//! ~10¹⁰, so — like the other tuners — GEIST operates on the sampled pool,
//! connected as a k-nearest-neighbor graph in normalized parameter space.

use super::{fit_surrogate, measure_indices, random_unmeasured, score_pool, Autotuner, TunerRun};
use crate::features::FeatureMap;
use crate::metrics::top_n;
use crate::oracle::{MeasureError, Oracle};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The GEIST tuner.
#[derive(Debug, Clone, Copy)]
pub struct Geist {
    /// Number of measurement batches.
    pub iterations: usize,
    /// Neighbors per node in the parameter graph.
    pub k_neighbors: usize,
    /// Fraction of measured configurations labeled "optimal" (top 5 % in
    /// the original).
    pub optimal_fraction: f64,
    /// Fraction of each batch spent on random exploration.
    pub explore_fraction: f64,
    /// Label-propagation sweeps per iteration.
    pub propagation_sweeps: usize,
}

impl Default for Geist {
    fn default() -> Self {
        Self {
            iterations: 5,
            k_neighbors: 8,
            optimal_fraction: 0.05,
            explore_fraction: 0.2,
            propagation_sweeps: 20,
        }
    }
}

/// Builds the k-NN adjacency lists over pool configurations.
fn knn_graph(fm: &FeatureMap, pool: &[Vec<i64>], k: usize) -> Vec<Vec<u32>> {
    let encoded: Vec<Vec<f64>> = pool.iter().map(|c| fm.encode(c)).collect();
    let idx: Vec<usize> = (0..pool.len()).collect();
    ceal_par::parallel_map(&idx, |&i| {
        let mut dists: Vec<(u32, f64)> = encoded
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(j, row)| {
                let d: f64 = row
                    .iter()
                    .zip(&encoded[i])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (j as u32, d)
            })
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1));
        dists.truncate(k);
        dists.into_iter().map(|(j, _)| j).collect()
    })
}

impl Geist {
    /// Propagates optimality labels from measured nodes across the graph,
    /// returning a goodness score per pool node in [0, 1].
    fn propagate(
        &self,
        graph: &[Vec<u32>],
        labels: &[Option<f64>], // Some(1.0) optimal, Some(0.0) not, None unmeasured
    ) -> Vec<f64> {
        let n = graph.len();
        let mut score: Vec<f64> = labels.iter().map(|l| l.unwrap_or(0.5)).collect();
        for _ in 0..self.propagation_sweeps {
            let prev = score.clone();
            for i in 0..n {
                if let Some(fixed) = labels[i] {
                    score[i] = fixed;
                } else if !graph[i].is_empty() {
                    let s: f64 = graph[i].iter().map(|&j| prev[j as usize]).sum();
                    score[i] = s / graph[i].len() as f64;
                }
            }
        }
        score
    }
}

impl Autotuner for Geist {
    fn name(&self) -> &'static str {
        "GEIST"
    }

    fn try_run(
        &self,
        oracle: &dyn Oracle,
        pool: &[Vec<i64>],
        budget: usize,
        seed: u64,
    ) -> Result<TunerRun, MeasureError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fm = FeatureMap::for_workflow(oracle.spec());
        let graph = knn_graph(&fm, pool, self.k_neighbors);
        let iters = self.iterations.clamp(1, budget.max(1));
        let batch = (budget / iters).max(1);
        let mut measured_idx = vec![false; pool.len()];
        let mut measured = Vec::with_capacity(budget);
        let mut pool_pos: Vec<usize> = Vec::with_capacity(budget); // pool index per measurement

        // Initial random batch.
        let first = random_unmeasured(&measured_idx, batch.min(budget), &mut rng);
        pool_pos.extend(&first);
        measure_indices(oracle, pool, &first, &mut measured_idx, &mut measured)?;

        while measured.len() < budget {
            // Label measured nodes: top `optimal_fraction` of observed
            // values are "optimal".
            let values: Vec<f64> = measured.iter().map(|m| m.value).collect();
            let n_opt = ((values.len() as f64 * self.optimal_fraction).ceil() as usize)
                .clamp(1, values.len());
            let best = top_n(&values, n_opt);
            let mut labels: Vec<Option<f64>> = vec![None; pool.len()];
            for (mi, &pi) in pool_pos.iter().enumerate() {
                labels[pi] = Some(if best.contains(&mi) { 1.0 } else { 0.0 });
            }
            let goodness = self.propagate(&graph, &labels);

            let take = batch.min(budget - measured.len());
            let n_explore = ((take as f64) * self.explore_fraction).round() as usize;
            let n_exploit = take - n_explore;

            // Exploit: highest propagated goodness first.
            let mut cand: Vec<usize> = (0..pool.len()).filter(|&i| !measured_idx[i]).collect();
            cand.sort_by(|&a, &b| goodness[b].total_cmp(&goodness[a]).then(a.cmp(&b)));
            let mut picks: Vec<usize> = cand.into_iter().take(n_exploit).collect();
            for i in &picks {
                measured_idx[*i] = true; // reserve before drawing randoms
            }
            let explore = random_unmeasured(&measured_idx, n_explore, &mut rng);
            for i in &picks {
                measured_idx[*i] = false; // measure_indices re-marks
            }
            picks.extend(explore);
            if picks.is_empty() {
                break;
            }
            pool_pos.extend(&picks);
            measure_indices(oracle, pool, &picks, &mut measured_idx, &mut measured)?;
        }

        // Final surrogate for searching/reporting: the standard boosted
        // trees trained on GEIST's sample selection.
        let model = fit_surrogate(&fm, &measured, seed);
        let scores = score_pool(&fm, model.as_ref(), pool);
        Ok(TunerRun::from_scores(pool, scores, measured, Vec::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::lv_exec_fixture;
    use super::*;

    #[test]
    fn consumes_budget() {
        let fix = lv_exec_fixture();
        let run = Geist::default().run(&fix.oracle, &fix.pool, 25, 1);
        assert_eq!(run.runs_used(), 25);
        assert_eq!(run.pool_scores.len(), fix.pool.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let fix = lv_exec_fixture();
        let a = Geist::default().run(&fix.oracle, &fix.pool, 20, 5);
        let b = Geist::default().run(&fix.oracle, &fix.pool, 20, 5);
        assert_eq!(a.best_predicted, b.best_predicted);
    }

    #[test]
    fn knn_graph_shape() {
        let fix = lv_exec_fixture();
        let fm = FeatureMap::for_workflow(fix.oracle.spec());
        let g = knn_graph(&fm, &fix.pool[..50], 4);
        assert_eq!(g.len(), 50);
        for (i, nbrs) in g.iter().enumerate() {
            assert_eq!(nbrs.len(), 4);
            assert!(!nbrs.contains(&(i as u32)), "self-loop at {i}");
        }
    }

    #[test]
    fn propagation_keeps_fixed_labels_and_bounds() {
        let geist = Geist::default();
        // Path graph 0-1-2-3 with ends labeled.
        let graph = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let labels = vec![Some(1.0), None, None, Some(0.0)];
        let s = geist.propagate(&graph, &labels);
        assert_eq!(s[0], 1.0);
        assert_eq!(s[3], 0.0);
        assert!(s[1] > s[2], "closer to optimal end should score higher");
        for &v in &s {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
