//! A reinforcement-learning-style tuner — the second §9 future-work
//! direction ("the agent in RL can … dynamically update the sample pool
//! containing higher-performing configurations according to measured
//! configurations").
//!
//! The configuration pool is clustered into regions (k-means over
//! normalized parameters); each region is a bandit arm. A UCB1 agent
//! allocates measurements to arms by their observed mean reward (negative
//! normalized time) plus an exploration bonus, then measures the most
//! promising unmeasured configuration inside the chosen arm — promising
//! according to the evolving boosted-tree critic, or to the low-fidelity
//! model before enough data exists. The final surrogate is the same
//! boosted-tree model the other tuners report.

use super::{fit_surrogate, measure_indices, random_unmeasured, score_pool, Autotuner, TunerRun};
use crate::acm::{CombineFn, ComponentModels, LowFidelityModel};
use crate::features::FeatureMap;
use crate::history::ComponentHistory;
use crate::oracle::{MeasureError, Oracle, SoloMeasurement};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The bandit tuner.
#[derive(Clone)]
pub struct BanditTuner {
    /// Number of regions (arms).
    pub arms: usize,
    /// UCB exploration coefficient.
    pub exploration: f64,
    /// Phase-1 bootstrap: when set, arm priors come from the low-fidelity
    /// model instead of starting cold.
    pub bootstrap: Option<BanditBootstrap>,
}

/// Phase-1 settings of the bootstrapped bandit.
#[derive(Clone)]
pub struct BanditBootstrap {
    /// Budget fraction for component solo runs (ignored with history).
    pub m_r_fraction: f64,
    /// Historical component measurements.
    pub history: Option<Arc<ComponentHistory>>,
}

impl BanditTuner {
    /// Plain UCB bandit over pool regions.
    pub fn new() -> Self {
        Self {
            arms: 12,
            exploration: 1.0,
            bootstrap: None,
        }
    }

    /// Bootstrapped bandit: low-fidelity model priors per arm.
    pub fn bootstrapped(history: Option<Arc<ComponentHistory>>) -> Self {
        Self {
            arms: 12,
            exploration: 1.0,
            bootstrap: Some(BanditBootstrap {
                m_r_fraction: if history.is_some() { 0.0 } else { 0.4 },
                history,
            }),
        }
    }
}

impl Default for BanditTuner {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain k-means over rows (Lloyd's algorithm, fixed iteration count),
/// returning each row's cluster id. Deterministic given the seed.
pub(crate) fn kmeans(rows: &[Vec<f64>], k: usize, seed: u64, iters: usize) -> Vec<usize> {
    assert!(!rows.is_empty() && k >= 1);
    let k = k.min(rows.len());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    use rand::seq::SliceRandom;
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    idx.shuffle(&mut rng);
    let mut centers: Vec<Vec<f64>> = idx[..k].iter().map(|&i| rows[i].clone()).collect();
    let mut assign = vec![0usize; rows.len()];
    for _ in 0..iters {
        // Assign.
        for (i, row) in rows.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d: f64 = row.iter().zip(center).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best;
        }
        // Update.
        let dim = rows[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, row) in rows.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, v) in sums[assign[i]].iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centers[c] = sums[c].clone();
            }
        }
    }
    assign
}

impl Autotuner for BanditTuner {
    fn name(&self) -> &'static str {
        if self.bootstrap.is_some() {
            "CEAL-RL"
        } else {
            "RL"
        }
    }

    fn try_run(
        &self,
        oracle: &dyn Oracle,
        pool: &[Vec<i64>],
        budget: usize,
        seed: u64,
    ) -> Result<TunerRun, MeasureError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spec = oracle.spec();
        let fm = FeatureMap::for_workflow(spec);
        let encoded: Vec<Vec<f64>> = pool.iter().map(|c| fm.encode(c)).collect();
        let arms = kmeans(&encoded, self.arms, seed ^ 0xA7A7, 12);
        let n_arms = self.arms.min(pool.len());

        // Optional phase 1.
        let mut component_runs: Vec<SoloMeasurement> = Vec::new();
        let mut coupled_budget = budget;
        let mut ml_scores: Option<Vec<f64>> = None;
        if let Some(boot) = &self.bootstrap {
            let m_r = if boot.history.is_some() {
                0
            } else {
                (((budget as f64) * boot.m_r_fraction).round() as usize).clamp(1, budget)
            };
            let mut comp_data = match &boot.history {
                Some(h) => (**h).clone(),
                None => ComponentHistory::empty(spec.components.len()),
            };
            for j in 0..spec.components.len() {
                for _ in 0..m_r {
                    let values = spec.sample_component_feasible(oracle.platform(), j, &mut rng);
                    let meas = oracle.try_measure_component(j, &values)?;
                    comp_data.push(j, values, meas.value);
                    component_runs.push(meas);
                }
            }
            let ml = LowFidelityModel::new(
                spec,
                ComponentModels::fit(spec, &comp_data, seed),
                CombineFn::for_objective(oracle.objective()),
            );
            ml_scores = Some(ml.score_all(pool));
            coupled_budget = budget.saturating_sub(m_r).max(1);
        }

        // Arm priors: with a low-fidelity model, the agent starts from the
        // predicted mean rank of each arm; cold otherwise.
        let mut pulls = vec![0usize; n_arms];
        let mut reward_sum = vec![0.0f64; n_arms];
        if let Some(scores) = &ml_scores {
            // Prior = one pseudo-pull per arm with reward from the arm's
            // best predicted configuration (min-max normalized).
            let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let span = (hi - lo).max(1e-12);
            for a in 0..n_arms {
                let best = (0..pool.len())
                    .filter(|&i| arms[i] == a)
                    .map(|i| scores[i])
                    .fold(f64::INFINITY, f64::min);
                if best.is_finite() {
                    pulls[a] = 1;
                    reward_sum[a] = 1.0 - (best - lo) / span;
                }
            }
        }

        let mut measured_idx = vec![false; pool.len()];
        let mut measured = Vec::with_capacity(coupled_budget);
        let mut observed_lo = f64::INFINITY;
        let mut observed_hi = f64::NEG_INFINITY;

        while measured.len() < coupled_budget {
            // UCB1 arm choice among arms with free configurations.
            let total: usize = pulls.iter().sum::<usize>().max(1);
            let mut best_arm = None;
            let mut best_score = f64::NEG_INFINITY;
            for a in 0..n_arms {
                let free = (0..pool.len()).any(|i| arms[i] == a && !measured_idx[i]);
                if !free {
                    continue;
                }
                let ucb = if pulls[a] == 0 {
                    f64::INFINITY
                } else {
                    reward_sum[a] / pulls[a] as f64
                        + self.exploration * ((total as f64).ln() / pulls[a] as f64).sqrt()
                };
                if ucb > best_score {
                    best_score = ucb;
                    best_arm = Some(a);
                }
            }
            let Some(arm) = best_arm else { break };

            // Inside the arm: the critic's best unmeasured pick (boosted
            // trees once ≥ 5 samples exist; the low-fidelity prior or a
            // random member before that).
            let members: Vec<usize> = (0..pool.len())
                .filter(|&i| arms[i] == arm && !measured_idx[i])
                .collect();
            let pick = if measured.len() >= 5 {
                let critic = fit_surrogate(&fm, &measured, seed ^ measured.len() as u64);
                *members
                    .iter()
                    .min_by(|&&a, &&b| {
                        critic
                            .predict_row(&encoded[a])
                            .total_cmp(&critic.predict_row(&encoded[b]))
                    })
                    .expect("nonempty arm")
            } else if let Some(scores) = &ml_scores {
                *members
                    .iter()
                    .min_by(|&&a, &&b| scores[a].total_cmp(&scores[b]))
                    .expect("nonempty arm")
            } else {
                members[random_unmeasured(&measured_idx, 1, &mut rng)
                    .first()
                    .map(|_| 0)
                    .unwrap_or(0)
                    .min(members.len() - 1)]
            };

            measure_indices(oracle, pool, &[pick], &mut measured_idx, &mut measured)?;
            let value = measured.last().expect("just measured").value;
            observed_lo = observed_lo.min(value);
            observed_hi = observed_hi.max(value);
            let span = (observed_hi - observed_lo).max(1e-12);
            pulls[arm] += 1;
            reward_sum[arm] += 1.0 - (value - observed_lo) / span;
        }

        let model = fit_surrogate(&fm, &measured, seed);
        let scores = score_pool(&fm, model.as_ref(), pool);
        Ok(TunerRun::from_scores(
            pool,
            scores,
            measured,
            component_runs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{lv_exec_fixture, truth_of};
    use super::*;

    #[test]
    fn kmeans_assigns_every_row() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 5) as f64, (i / 10) as f64])
            .collect();
        let assign = kmeans(&rows, 4, 0, 10);
        assert_eq!(assign.len(), 50);
        assert!(assign.iter().all(|&a| a < 4));
        // At least two clusters actually used on structured data.
        let mut used = assign.clone();
        used.sort_unstable();
        used.dedup();
        assert!(used.len() >= 2);
    }

    #[test]
    fn kmeans_handles_k_larger_than_rows() {
        let rows = vec![vec![0.0], vec![1.0]];
        let assign = kmeans(&rows, 10, 0, 5);
        assert!(assign.iter().all(|&a| a < 2));
    }

    #[test]
    fn bandit_spends_budget_and_scores_pool() {
        let fix = lv_exec_fixture();
        let run = BanditTuner::new().run(&fix.oracle, &fix.pool, 25, 0);
        assert_eq!(run.runs_used(), 25);
        assert_eq!(run.pool_scores.len(), fix.pool.len());
    }

    #[test]
    fn bootstrapped_bandit_charges_components() {
        let fix = lv_exec_fixture();
        let run = BanditTuner::bootstrapped(None).run(&fix.oracle, &fix.pool, 30, 0);
        assert_eq!(run.component_runs.len(), 2 * 12);
        assert!(run.runs_used() <= 18);
    }

    #[test]
    fn deterministic_per_seed() {
        let fix = lv_exec_fixture();
        let t = BanditTuner::new();
        let a = t.run(&fix.oracle, &fix.pool, 20, 9);
        let b = t.run(&fix.oracle, &fix.pool, 20, 9);
        assert_eq!(a.best_predicted, b.best_predicted);
    }

    #[test]
    fn bandit_beats_pool_median() {
        let fix = lv_exec_fixture();
        let mut sorted = fix.truth.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let vals: Vec<f64> = (0..6)
            .map(|s| {
                truth_of(
                    fix,
                    &BanditTuner::new()
                        .run(&fix.oracle, &fix.pool, 40, s)
                        .best_predicted,
                )
            })
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean < median, "bandit mean {mean} vs median {median}");
    }
}
