//! Didona-style analytical/ML ensembles (paper §8.2) as ablation tuners.
//!
//! The paper argues these three classic ways of combining an analytical
//! model (AM) with ML are ill-suited to in-situ auto-tuning because the
//! available AM (the low-fidelity combination of component models) is too
//! rough. Implementing them makes that argument testable:
//!
//! * **KNN** — per query, choose AM or ML by whichever has the smaller
//!   error over the query's K nearest measured configurations.
//! * **HyBoost** — predict `AM(c) + ML_residual(c)`, the ML model trained
//!   on the AM's residuals.
//! * **PR (probing)** — use the AM where its error on the nearest measured
//!   configuration is below a threshold, ML elsewhere.
//!
//! All three select samples with the same batch-active-learning loop AL
//! uses, driven by their own ensemble prediction, and spend part of the
//! budget on component solo runs to build the AM (like CEAL).

use super::{encode_pool, measure_indices, random_unmeasured, Autotuner, TunerRun};
use crate::acm::{CombineFn, ComponentModels, LowFidelityModel};
use crate::features::FeatureMap;
use crate::history::ComponentHistory;
use crate::oracle::{MeasureError, Measurement, Oracle, SoloMeasurement};
use ceal_ml::{Dataset, GbtParams, GradientBoosting, Regressor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Which ensemble strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnsembleKind {
    /// Per-query model selection by K-nearest-neighbor validation error.
    Knn,
    /// AM plus ML-learned residual correction.
    HyBoost,
    /// AM where probing shows it accurate, ML elsewhere.
    Probing,
}

impl EnsembleKind {
    /// Display name used in ablation reports.
    pub fn label(&self) -> &'static str {
        match self {
            EnsembleKind::Knn => "KNN-ensemble",
            EnsembleKind::HyBoost => "HyBoost",
            EnsembleKind::Probing => "PR",
        }
    }
}

/// An ensemble-of-AM-and-ML tuner.
pub struct EnsembleTuner {
    /// Strategy.
    pub kind: EnsembleKind,
    /// Active-learning batches.
    pub iterations: usize,
    /// Budget fraction for component solo runs when no history is given.
    pub m_r_fraction: f64,
    /// Neighbors consulted (KNN / probing).
    pub k: usize,
    /// Relative-error threshold below which PR trusts the AM.
    pub probe_threshold: f64,
    /// Historical component measurements.
    pub history: Option<Arc<ComponentHistory>>,
}

impl EnsembleTuner {
    /// Creates an ensemble tuner with the defaults used in the ablations.
    pub fn new(kind: EnsembleKind) -> Self {
        Self {
            kind,
            iterations: 5,
            m_r_fraction: 0.5,
            k: 5,
            probe_threshold: 0.25,
            history: None,
        }
    }
}

/// One round's ensemble predictor, built from batched model evaluations.
///
/// The AM and ML parts are evaluated over the whole pool and the measured
/// set up front (`predict_batch` on the pre-encoded pool), so per-config
/// prediction only combines precomputed scores — the per-query work left is
/// the KNN/probing nearest-neighbor lookup.
struct EnsembleModel<'a> {
    kind: EnsembleKind,
    k: usize,
    probe_threshold: f64,
    fm: &'a FeatureMap,
    measured: &'a [Measurement],
    /// AM scores over the pool (fixed for the whole run).
    am_pool: &'a [f64],
    /// AM scores of the measured configurations, aligned with `measured`.
    am_meas: &'a [f64],
    /// This round's ML predictions over the pool.
    ml_pool: Vec<f64>,
    /// This round's ML predictions on the measured configurations.
    ml_meas: Vec<f64>,
    /// HyBoost residual predictions over the pool.
    res_pool: Option<Vec<f64>>,
}

impl EnsembleModel<'_> {
    /// Indices of the `k` nearest measured configurations to `config`.
    fn nearest(&self, config: &[i64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.measured.len()).collect();
        idx.sort_by(|&a, &b| {
            self.fm
                .distance(&self.measured[a].config, config)
                .total_cmp(&self.fm.distance(&self.measured[b].config, config))
        });
        idx.truncate(self.k.max(1));
        idx
    }

    /// Ensemble prediction for pool index `i` (`config == pool[i]`).
    fn predict_idx(&self, i: usize, config: &[i64]) -> f64 {
        let am_pred = self.am_pool[i];
        match self.kind {
            EnsembleKind::HyBoost => match &self.res_pool {
                Some(r) => am_pred + r[i],
                None => am_pred,
            },
            EnsembleKind::Knn => {
                if self.measured.is_empty() {
                    return am_pred;
                }
                let nn = self.nearest(config);
                let mut am_err = 0.0;
                let mut ml_err = 0.0;
                for &j in &nn {
                    let m = &self.measured[j];
                    am_err += (self.am_meas[j] - m.value).abs();
                    ml_err += (self.ml_meas[j] - m.value).abs();
                }
                if ml_err < am_err {
                    self.ml_pool[i]
                } else {
                    am_pred
                }
            }
            EnsembleKind::Probing => {
                if self.measured.is_empty() {
                    return am_pred;
                }
                let nn = self.nearest(config);
                let m = &self.measured[nn[0]];
                let rel = ((self.am_meas[nn[0]] - m.value) / m.value.max(1e-12)).abs();
                if rel <= self.probe_threshold {
                    am_pred
                } else {
                    self.ml_pool[i]
                }
            }
        }
    }
}

impl Autotuner for EnsembleTuner {
    fn name(&self) -> &'static str {
        self.kind.label()
    }

    fn try_run(
        &self,
        oracle: &dyn Oracle,
        pool: &[Vec<i64>],
        budget: usize,
        seed: u64,
    ) -> Result<TunerRun, MeasureError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spec = oracle.spec();
        let fm = FeatureMap::for_workflow(spec);

        // Build the AM exactly as CEAL's phase 1 does.
        // At least one component round is required without history.
        let m_r = if self.history.is_some() {
            0
        } else {
            (((budget as f64) * self.m_r_fraction).round() as usize).clamp(1, budget)
        };
        let mut component_runs: Vec<SoloMeasurement> = Vec::new();
        let mut comp_data = match &self.history {
            Some(h) => (**h).clone(),
            None => ComponentHistory::empty(spec.components.len()),
        };
        for j in 0..spec.components.len() {
            for _ in 0..m_r {
                let values = spec.sample_component_feasible(oracle.platform(), j, &mut rng);
                let meas = oracle.try_measure_component(j, &values)?;
                comp_data.push(j, values, meas.value);
                component_runs.push(meas);
            }
        }
        let am = LowFidelityModel::new(
            spec,
            ComponentModels::fit(spec, &comp_data, seed),
            CombineFn::for_objective(oracle.objective()),
        );

        let coupled_budget = budget.saturating_sub(m_r).max(1);
        let iters = self.iterations.clamp(1, coupled_budget);
        let batch = (coupled_budget / iters).max(1);
        let mut measured_idx = vec![false; pool.len()];
        let mut measured: Vec<Measurement> = Vec::with_capacity(coupled_budget);

        // The pool and the AM are fixed for the run: encode and score them
        // once. Measured configs accumulate, encoded/AM-scored as they come.
        let enc_pool = encode_pool(&fm, pool);
        let am_pool = am.score_all(pool);
        let mut enc_meas = Dataset::new(fm.n_features());
        let mut am_meas: Vec<f64> = Vec::with_capacity(coupled_budget);

        let first = random_unmeasured(&measured_idx, batch.min(coupled_budget), &mut rng);
        measure_indices(oracle, pool, &first, &mut measured_idx, &mut measured)?;

        loop {
            for m in &measured[enc_meas.n_rows()..] {
                enc_meas.push_row(&fm.encode(&m.config), m.value);
                am_meas.push(am.score(&m.config));
            }
            // (Re)train the ML parts on everything measured so far, then
            // evaluate them over the pool and the measured set in one batch
            // each.
            let mut ml_model = GradientBoosting::new(GbtParams::small_sample(seed));
            ml_model.fit(&enc_meas);
            let res_pool = if self.kind == EnsembleKind::HyBoost {
                // Same encoded rows, retargeted to the AM residuals.
                let mut train = Dataset::new(fm.n_features());
                for (j, (m, am)) in measured.iter().zip(&am_meas).enumerate() {
                    train.push_row(enc_meas.row(j), m.value - am);
                }
                let mut r = GradientBoosting::new(GbtParams::small_sample(seed ^ 1));
                r.fit(&train);
                Some(r.predict_batch(&enc_pool))
            } else {
                None
            };
            let model = EnsembleModel {
                kind: self.kind,
                k: self.k,
                probe_threshold: self.probe_threshold,
                fm: &fm,
                measured: &measured,
                am_pool: &am_pool,
                am_meas: &am_meas,
                ml_pool: ml_model.predict_batch(&enc_pool),
                ml_meas: ml_model.predict_batch(&enc_meas),
                res_pool,
            };

            if measured.len() >= coupled_budget {
                // Final scoring pass.
                let scores: Vec<f64> = pool
                    .iter()
                    .enumerate()
                    .map(|(i, c)| model.predict_idx(i, c))
                    .collect();
                return Ok(TunerRun::from_scores(
                    pool,
                    scores,
                    measured,
                    component_runs,
                ));
            }

            let take = batch.min(coupled_budget - measured.len());
            let mut cand: Vec<usize> = (0..pool.len()).filter(|&i| !measured_idx[i]).collect();
            let scores: Vec<f64> = pool
                .iter()
                .enumerate()
                .map(|(i, c)| model.predict_idx(i, c))
                .collect();
            cand.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
            cand.truncate(take);
            measure_indices(oracle, pool, &cand, &mut measured_idx, &mut measured)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{lv_exec_fixture, truth_of};
    use super::*;

    #[test]
    fn all_kinds_run_within_budget() {
        let fix = lv_exec_fixture();
        for kind in [
            EnsembleKind::Knn,
            EnsembleKind::HyBoost,
            EnsembleKind::Probing,
        ] {
            let run = EnsembleTuner::new(kind).run(&fix.oracle, &fix.pool, 30, 0);
            assert!(
                run.runs_used() <= 15,
                "{}: {}",
                kind.label(),
                run.runs_used()
            );
            assert_eq!(run.pool_scores.len(), fix.pool.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let fix = lv_exec_fixture();
        let t = EnsembleTuner::new(EnsembleKind::HyBoost);
        let a = t.run(&fix.oracle, &fix.pool, 24, 3);
        let b = t.run(&fix.oracle, &fix.pool, 24, 3);
        assert_eq!(a.best_predicted, b.best_predicted);
    }

    #[test]
    fn recommendations_are_not_absurd() {
        let fix = lv_exec_fixture();
        let mut sorted = fix.truth.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        for kind in [
            EnsembleKind::Knn,
            EnsembleKind::HyBoost,
            EnsembleKind::Probing,
        ] {
            let run = EnsembleTuner::new(kind).run(&fix.oracle, &fix.pool, 40, 1);
            let v = truth_of(fix, &run.best_predicted);
            assert!(
                v < median,
                "{} picked {v} worse than median {median}",
                kind.label()
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = [
            EnsembleKind::Knn,
            EnsembleKind::HyBoost,
            EnsembleKind::Probing,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels, vec!["KNN-ensemble", "HyBoost", "PR"]);
    }
}
