//! AL — batch active learning (paper §7.3).
//!
//! "A typical AL algorithm that iteratively selects as training samples a
//! batch of the best configurations predicted by gradually refined models"
//! (Mametjanov et al. / Behzad et al.). The first batch is random; each
//! subsequent batch takes the surrogate's top predictions among unmeasured
//! pool configurations.

use super::{
    encode_pool, fit_surrogate_kind, measure_indices, random_unmeasured, select_top_unmeasured,
    Autotuner, SurrogateKind, TunerRun,
};
use crate::features::FeatureMap;
use crate::oracle::{MeasureError, Oracle};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The batch-active-learning tuner.
#[derive(Debug, Clone, Copy)]
pub struct ActiveLearning {
    /// Number of batches (iterations); the budget is split evenly.
    pub iterations: usize,
    /// Surrogate model family.
    pub surrogate: SurrogateKind,
}

impl Default for ActiveLearning {
    fn default() -> Self {
        Self {
            iterations: 5,
            surrogate: SurrogateKind::BoostedTrees,
        }
    }
}

impl Autotuner for ActiveLearning {
    fn name(&self) -> &'static str {
        "AL"
    }

    fn try_run(
        &self,
        oracle: &dyn Oracle,
        pool: &[Vec<i64>],
        budget: usize,
        seed: u64,
    ) -> Result<TunerRun, MeasureError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fm = FeatureMap::for_workflow(oracle.spec());
        let iters = self.iterations.clamp(1, budget.max(1));
        let batch = (budget / iters).max(1);
        let mut measured_idx = vec![false; pool.len()];
        let mut measured = Vec::with_capacity(budget);
        // Fixed pool → encode once, score batched every iteration.
        let enc_pool = encode_pool(&fm, pool);

        // Batch 0: random seeding.
        let first = random_unmeasured(&measured_idx, batch.min(budget), &mut rng);
        measure_indices(oracle, pool, &first, &mut measured_idx, &mut measured)?;

        let mut model = fit_surrogate_kind(self.surrogate, &fm, &measured, seed);
        while measured.len() < budget {
            let take = batch.min(budget - measured.len());
            let scores = model.predict_batch(&enc_pool);
            let picks = select_top_unmeasured(&scores, &measured_idx, take);
            if picks.is_empty() {
                break;
            }
            measure_indices(oracle, pool, &picks, &mut measured_idx, &mut measured)?;
            model =
                fit_surrogate_kind(self.surrogate, &fm, &measured, seed ^ measured.len() as u64);
        }

        let scores = model.predict_batch(&enc_pool);
        Ok(TunerRun::from_scores(pool, scores, measured, Vec::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{lv_exec_fixture, truth_of};
    use super::super::RandomSampling;
    use super::*;
    use crate::metrics::mean;

    #[test]
    fn consumes_the_budget_in_batches() {
        let fix = lv_exec_fixture();
        let run = ActiveLearning::default().run(&fix.oracle, &fix.pool, 25, 3);
        assert_eq!(run.runs_used(), 25);
    }

    #[test]
    fn deterministic_per_seed() {
        let fix = lv_exec_fixture();
        let a = ActiveLearning::default().run(&fix.oracle, &fix.pool, 20, 11);
        let b = ActiveLearning::default().run(&fix.oracle, &fix.pool, 20, 11);
        assert_eq!(a.best_predicted, b.best_predicted);
    }

    #[test]
    fn beats_random_sampling_on_average() {
        let fix = lv_exec_fixture();
        let al: Vec<f64> = (0..8)
            .map(|s| {
                truth_of(
                    fix,
                    &ActiveLearning::default()
                        .run(&fix.oracle, &fix.pool, 30, s)
                        .best_predicted,
                )
            })
            .collect();
        let rs: Vec<f64> = (0..8)
            .map(|s| {
                truth_of(
                    fix,
                    &RandomSampling
                        .run(&fix.oracle, &fix.pool, 30, s)
                        .best_predicted,
                )
            })
            .collect();
        assert!(
            mean(&al) <= mean(&rs) * 1.05,
            "AL ({}) should not lose clearly to RS ({})",
            mean(&al),
            mean(&rs)
        );
    }

    #[test]
    fn budget_smaller_than_batches_still_works() {
        let fix = lv_exec_fixture();
        let run = ActiveLearning {
            iterations: 10,
            ..Default::default()
        }
        .run(&fix.oracle, &fix.pool, 3, 0);
        assert_eq!(run.runs_used(), 3);
    }
}
