//! Bayesian-optimization tuners — the paper's §9 future-work direction.
//!
//! Two variants:
//!
//! * [`BayesOpt`] — plain BO: a Gaussian-process surrogate with the
//!   expected-improvement acquisition selects each measurement batch
//!   (random initial design).
//! * Bootstrapped BO ([`BayesOpt::bootstrapped`]) — CEAL's phase 1
//!   (component models + analytical combination) seeds the initial design
//!   with the low-fidelity model's top picks, exactly as CEAL seeds its
//!   active learner: the bootstrapping method with BO as the black-box
//!   technique ("we will use other black-box techniques such as RL and BO
//!   … in the bootstrapping method", §9).

use super::{measure_indices, random_unmeasured, select_top_unmeasured, Autotuner, TunerRun};
use crate::acm::{CombineFn, ComponentModels, LowFidelityModel};
use crate::features::FeatureMap;
use crate::history::ComponentHistory;
use crate::oracle::{MeasureError, Oracle, SoloMeasurement};
use ceal_ml::{expected_improvement, Dataset, GaussianProcess, GpParams, Regressor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The Bayesian-optimization tuner.
#[derive(Clone)]
pub struct BayesOpt {
    /// Measurement batches after the initial design.
    pub iterations: usize,
    /// GP hyperparameters.
    pub gp: GpParams,
    /// Bootstrap phase-1 settings: `Some` runs CEAL's component-model
    /// combination to seed the initial design.
    pub bootstrap: Option<BoBootstrap>,
}

/// Phase-1 settings of bootstrapped BO.
#[derive(Clone)]
pub struct BoBootstrap {
    /// Budget fraction for component solo runs (ignored with history).
    pub m_r_fraction: f64,
    /// Historical component measurements.
    pub history: Option<Arc<ComponentHistory>>,
}

impl BayesOpt {
    /// Plain BO with a random initial design.
    pub fn new() -> Self {
        Self {
            iterations: 8,
            gp: GpParams::default(),
            bootstrap: None,
        }
    }

    /// Bootstrapped BO: the low-fidelity model seeds the initial design.
    pub fn bootstrapped(history: Option<Arc<ComponentHistory>>) -> Self {
        Self {
            iterations: 8,
            gp: GpParams::default(),
            bootstrap: Some(BoBootstrap {
                m_r_fraction: if history.is_some() { 0.0 } else { 0.4 },
                history,
            }),
        }
    }

    fn fit_gp(&self, fm: &FeatureMap, measured: &[crate::oracle::Measurement]) -> GaussianProcess {
        let rows: Vec<Vec<f64>> = measured.iter().map(|m| fm.encode(&m.config)).collect();
        let ys: Vec<f64> = measured.iter().map(|m| m.value).collect();
        let mut gp = GaussianProcess::new(self.gp);
        gp.fit(&Dataset::from_rows(&rows, &ys));
        gp
    }
}

impl Default for BayesOpt {
    fn default() -> Self {
        Self::new()
    }
}

impl Autotuner for BayesOpt {
    fn name(&self) -> &'static str {
        if self.bootstrap.is_some() {
            "CEAL-BO"
        } else {
            "BO"
        }
    }

    fn try_run(
        &self,
        oracle: &dyn Oracle,
        pool: &[Vec<i64>],
        budget: usize,
        seed: u64,
    ) -> Result<TunerRun, MeasureError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spec = oracle.spec();
        let fm = FeatureMap::for_workflow(spec);
        let encoded: Vec<Vec<f64>> = pool.iter().map(|c| fm.encode(c)).collect();

        // Optional phase 1: component models → low-fidelity seeding.
        let mut component_runs: Vec<SoloMeasurement> = Vec::new();
        let mut coupled_budget = budget;
        let mut seed_scores: Option<Vec<f64>> = None;
        if let Some(boot) = &self.bootstrap {
            let m_r = if boot.history.is_some() {
                0
            } else {
                (((budget as f64) * boot.m_r_fraction).round() as usize).clamp(1, budget)
            };
            let mut comp_data = match &boot.history {
                Some(h) => (**h).clone(),
                None => ComponentHistory::empty(spec.components.len()),
            };
            for j in 0..spec.components.len() {
                for _ in 0..m_r {
                    let values = spec.sample_component_feasible(oracle.platform(), j, &mut rng);
                    let meas = oracle.try_measure_component(j, &values)?;
                    comp_data.push(j, values, meas.value);
                    component_runs.push(meas);
                }
            }
            let ml = LowFidelityModel::new(
                spec,
                ComponentModels::fit(spec, &comp_data, seed),
                CombineFn::for_objective(oracle.objective()),
            );
            seed_scores = Some(ml.score_all(pool));
            coupled_budget = budget.saturating_sub(m_r).max(1);
        }

        let iters = self.iterations.clamp(1, coupled_budget);
        let init = (coupled_budget / (iters + 1)).max(1);
        let mut measured_idx = vec![false; pool.len()];
        let mut measured = Vec::with_capacity(coupled_budget);

        // Initial design: low-fidelity top picks (bootstrapped) mixed with
        // randoms, or pure randoms (plain BO).
        match &seed_scores {
            Some(scores) => {
                let n_random = init.div_ceil(2);
                let randoms =
                    random_unmeasured(&measured_idx, n_random.min(coupled_budget), &mut rng);
                for &i in &randoms {
                    measured_idx[i] = true;
                }
                let tops = select_top_unmeasured(
                    scores,
                    &measured_idx,
                    init.saturating_sub(randoms.len()),
                );
                for &i in &randoms {
                    measured_idx[i] = false;
                }
                let mut batch = randoms;
                batch.extend(tops);
                measure_indices(oracle, pool, &batch, &mut measured_idx, &mut measured)?;
            }
            None => {
                let batch = random_unmeasured(&measured_idx, init.min(coupled_budget), &mut rng);
                measure_indices(oracle, pool, &batch, &mut measured_idx, &mut measured)?;
            }
        }

        // BO loop: fit GP, take the batch with the highest EI.
        while measured.len() < coupled_budget {
            let gp = self.fit_gp(&fm, &measured);
            let best = measured
                .iter()
                .map(|m| m.value)
                .fold(f64::INFINITY, f64::min);
            let mut ei: Vec<(usize, f64)> = encoded
                .iter()
                .enumerate()
                .filter(|(i, _)| !measured_idx[*i])
                .map(|(i, row)| {
                    let (mean, var) = gp.predict_with_variance(row);
                    (i, expected_improvement(mean, var, best))
                })
                .collect();
            ei.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let take = ((coupled_budget - measured.len())
                .min((coupled_budget / (iters + 1)).max(1)))
            .max(1);
            let batch: Vec<usize> = ei.into_iter().take(take).map(|(i, _)| i).collect();
            if batch.is_empty() {
                break;
            }
            measure_indices(oracle, pool, &batch, &mut measured_idx, &mut measured)?;
        }

        // Final surrogate: GP posterior mean over the pool.
        let gp = self.fit_gp(&fm, &measured);
        let scores: Vec<f64> = encoded.iter().map(|row| gp.predict_row(row)).collect();
        Ok(TunerRun::from_scores(
            pool,
            scores,
            measured,
            component_runs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{lv_exec_fixture, truth_of};
    use super::*;

    #[test]
    fn plain_bo_spends_the_budget() {
        let fix = lv_exec_fixture();
        let run = BayesOpt::new().run(&fix.oracle, &fix.pool, 25, 0);
        assert_eq!(run.runs_used(), 25);
        assert!(run.component_runs.is_empty());
        assert_eq!(run.pool_scores.len(), fix.pool.len());
    }

    #[test]
    fn bootstrapped_bo_charges_component_runs() {
        let fix = lv_exec_fixture();
        let run = BayesOpt::bootstrapped(None).run(&fix.oracle, &fix.pool, 30, 0);
        assert_eq!(run.component_runs.len(), 2 * 12); // m_R = 0.4·30
        assert!(run.runs_used() <= 18);
    }

    #[test]
    fn deterministic_per_seed() {
        let fix = lv_exec_fixture();
        let bo = BayesOpt::new();
        let a = bo.run(&fix.oracle, &fix.pool, 20, 4);
        let b = bo.run(&fix.oracle, &fix.pool, 20, 4);
        assert_eq!(a.best_predicted, b.best_predicted);
    }

    #[test]
    fn bo_finds_good_configurations() {
        let fix = lv_exec_fixture();
        let mut sorted = fix.truth.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q25 = sorted[sorted.len() / 4];
        let vals: Vec<f64> = (0..6)
            .map(|s| {
                truth_of(
                    fix,
                    &BayesOpt::new()
                        .run(&fix.oracle, &fix.pool, 40, s)
                        .best_predicted,
                )
            })
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(
            mean < q25,
            "BO mean {mean} should beat the first quartile {q25}"
        );
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(BayesOpt::new().name(), "BO");
        assert_eq!(BayesOpt::bootstrapped(None).name(), "CEAL-BO");
    }
}
