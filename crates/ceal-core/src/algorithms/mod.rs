//! Auto-tuning algorithms: CEAL and its comparison targets (paper §7.3).
//!
//! Every algorithm receives the same inputs — an [`Oracle`], the candidate
//! pool `C_pool`, and a budget `m` of workflow-run equivalents — and
//! returns a [`TunerRun`]: what it measured (for cost accounting), its
//! final surrogate's scores over the whole pool (for recall/MdAPE
//! metrics), and the configuration its searcher recommends.

mod al;
mod alph;
mod bo;
mod ceal_algo;
mod ensembles;
mod geist;
mod rl;
mod rs;

pub use al::ActiveLearning;
pub use alph::Alph;
pub use bo::{BayesOpt, BoBootstrap};
pub use ceal_algo::{Ceal, CealParams, SwitchMode};
pub use ensembles::{EnsembleKind, EnsembleTuner};
pub use geist::Geist;
pub use rl::{BanditBootstrap, BanditTuner};
pub use rs::RandomSampling;

use crate::features::FeatureMap;
use crate::metrics::top_n;
use crate::oracle::{MeasureError, Measurement, Oracle, SoloMeasurement};
use ceal_ml::{
    Dataset, GbtParams, GradientBoosting, KnnRegressor, RandomForest, RandomForestParams, Regressor,
};
use ceal_sim::Objective;

/// Which ML model family the tuner uses as its workflow surrogate.
///
/// The paper argues (§2.2) that boosted trees and random forests suit the
/// few-sample regime while neural networks don't; this knob lets the
/// `ablation-surrogate` bench test that argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SurrogateKind {
    /// XGBoost-style gradient boosting (the paper's choice).
    #[default]
    BoostedTrees,
    /// Bagged random forest.
    RandomForest,
    /// k-nearest-neighbor regression (k = 5).
    Knn,
}

/// The outcome of one auto-tuning run.
#[derive(Debug, Clone)]
pub struct TunerRun {
    /// Coupled workflow measurements, in collection order.
    pub measured: Vec<Measurement>,
    /// Standalone component measurements (CEAL/ALpH phase 1), for cost
    /// accounting.
    pub component_runs: Vec<SoloMeasurement>,
    /// The final surrogate's score for every pool configuration (aligned
    /// with the pool; lower predicted value = better).
    pub pool_scores: Vec<f64>,
    /// The searcher's recommendation: the pool configuration with the best
    /// predicted performance.
    pub best_predicted: Vec<i64>,
}

impl TunerRun {
    /// Assembles a run result, deriving `best_predicted` from the scores.
    pub fn from_scores(
        pool: &[Vec<i64>],
        pool_scores: Vec<f64>,
        measured: Vec<Measurement>,
        component_runs: Vec<SoloMeasurement>,
    ) -> Self {
        assert_eq!(pool.len(), pool_scores.len(), "score/pool length mismatch");
        let best = top_n(&pool_scores, 1)[0];
        Self {
            measured,
            component_runs,
            pool_scores,
            best_predicted: pool[best].clone(),
        }
    }

    /// Total data-collection cost in the units of `objective` (paper
    /// §7.2.3): the sum over coupled training runs plus all component solo
    /// runs.
    pub fn collection_cost(&self, objective: Objective) -> f64 {
        let coupled: f64 = self
            .measured
            .iter()
            .map(|m| match objective {
                Objective::ExecutionTime => m.exec_time,
                Objective::ComputerTime => m.computer_time,
            })
            .sum();
        let solo: f64 = self
            .component_runs
            .iter()
            .map(|m| match objective {
                Objective::ExecutionTime => m.exec_time,
                Objective::ComputerTime => m.computer_time,
            })
            .sum();
        coupled + solo
    }

    /// Number of coupled workflow runs consumed.
    pub fn runs_used(&self) -> usize {
        self.measured.len()
    }
}

/// An empirical model-based auto-tuner (paper §2.2).
pub trait Autotuner: Sync {
    /// Algorithm name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Runs the tuner with `budget` workflow-run equivalents against
    /// `oracle`, selecting measurements from `pool`. `seed` controls every
    /// random choice; equal seeds reproduce the run exactly.
    ///
    /// A measurement failure (infeasible configuration, exhausted retries,
    /// journal I/O error) aborts the run and surfaces as the typed
    /// [`MeasureError`] — the campaign's paid-for measurements survive in
    /// whatever journal wraps the oracle.
    fn try_run(
        &self,
        oracle: &dyn Oracle,
        pool: &[Vec<i64>],
        budget: usize,
        seed: u64,
    ) -> Result<TunerRun, MeasureError>;

    /// Convenience wrapper over [`Autotuner::try_run`] for callers that
    /// treat a measurement failure as a programming error (benchmarks,
    /// fixtures).
    ///
    /// # Panics
    /// Panics if the run fails.
    fn run(&self, oracle: &dyn Oracle, pool: &[Vec<i64>], budget: usize, seed: u64) -> TunerRun {
        self.try_run(oracle, pool, budget, seed)
            .unwrap_or_else(|e| panic!("{} tuning run failed: {e}", self.name()))
    }
}

/// Fits the standard workflow surrogate (boosted trees by default, paper
/// §7.3) on the measured configurations.
pub(crate) fn fit_surrogate(
    fm: &FeatureMap,
    measured: &[Measurement],
    seed: u64,
) -> Box<dyn Regressor> {
    fit_surrogate_kind(SurrogateKind::BoostedTrees, fm, measured, seed)
}

/// Fits a surrogate of the requested model family.
pub(crate) fn fit_surrogate_kind(
    kind: SurrogateKind,
    fm: &FeatureMap,
    measured: &[Measurement],
    seed: u64,
) -> Box<dyn Regressor> {
    let samples: Vec<(Vec<i64>, f64)> = measured
        .iter()
        .map(|m| (m.config.clone(), m.value))
        .collect();
    fit_surrogate_samples(kind, fm, &samples, seed)
}

/// Fits a surrogate of the requested model family on raw
/// `(configuration, value)` pairs.
///
/// This is the entry point for callers that hold measurements outside the
/// [`Measurement`] struct — e.g. a serving layer refitting a surrogate from
/// a persisted cache of `(config, value)` samples without re-measuring.
pub fn fit_surrogate_samples(
    kind: SurrogateKind,
    fm: &FeatureMap,
    samples: &[(Vec<i64>, f64)],
    seed: u64,
) -> Box<dyn Regressor> {
    let rows: Vec<Vec<f64>> = samples.iter().map(|(c, _)| fm.encode(c)).collect();
    let ys: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
    let data = Dataset::from_rows(&rows, &ys);
    match kind {
        SurrogateKind::BoostedTrees => {
            let mut gbt = GradientBoosting::new(GbtParams::small_sample(seed));
            gbt.fit(&data);
            Box::new(gbt)
        }
        SurrogateKind::RandomForest => {
            let mut rf = RandomForest::new(RandomForestParams {
                seed,
                ..Default::default()
            });
            rf.fit(&data);
            Box::new(rf)
        }
        SurrogateKind::Knn => {
            let mut knn = KnnRegressor::new(5);
            knn.fit(&data);
            Box::new(knn)
        }
    }
}

/// Encodes every pool configuration into one feature [`Dataset`] (targets
/// are unused and zero-filled).
///
/// The candidate pool is fixed for a tuning run, so callers that score it
/// repeatedly should encode it once and reuse the dataset with
/// [`Regressor::predict_batch`] — encoding allocates a feature row per
/// configuration and dominates the scoring loop otherwise.
pub fn encode_pool(fm: &FeatureMap, pool: &[Vec<i64>]) -> Dataset {
    let rows: Vec<Vec<f64>> = pool.iter().map(|c| fm.encode(c)).collect();
    Dataset::from_rows(&rows, &vec![0.0; rows.len()])
}

/// Predicts a surrogate over every pool configuration.
///
/// Encodes the pool on each call; loops that score a fixed pool repeatedly
/// should hoist [`encode_pool`] and call `predict_batch` themselves.
pub(crate) fn score_pool(fm: &FeatureMap, model: &dyn Regressor, pool: &[Vec<i64>]) -> Vec<f64> {
    model.predict_batch(&encode_pool(fm, pool))
}

/// Picks the `k` best-scoring pool indices among those not yet measured.
pub(crate) fn select_top_unmeasured(scores: &[f64], measured_idx: &[bool], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).filter(|&i| !measured_idx[i]).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Measures pool configurations by index, marking them measured. A
/// failure leaves the earlier measurements in `out` (they are paid for and
/// journaled) and propagates the error.
pub(crate) fn measure_indices(
    oracle: &dyn Oracle,
    pool: &[Vec<i64>],
    indices: &[usize],
    measured_idx: &mut [bool],
    out: &mut Vec<Measurement>,
) -> Result<(), MeasureError> {
    for &i in indices {
        debug_assert!(!measured_idx[i], "pool index {i} measured twice");
        let m = oracle.try_measure(&pool[i])?;
        measured_idx[i] = true;
        out.push(m);
    }
    Ok(())
}

/// Draws `k` distinct unmeasured pool indices uniformly at random.
pub(crate) fn random_unmeasured<R: rand::Rng>(
    measured_idx: &[bool],
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut free: Vec<usize> = (0..measured_idx.len())
        .filter(|&i| !measured_idx[i])
        .collect();
    free.shuffle(rng);
    free.truncate(k);
    free
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixture: a small LV pool with a precomputed oracle.

    use crate::oracle::{PoolOracle, SimOracle};
    use crate::pool::sample_pool;
    use ceal_apps::lv;
    use ceal_sim::{Objective, Simulator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::OnceLock;

    pub struct Fixture {
        pub pool: Vec<Vec<i64>>,
        pub oracle: PoolOracle,
        pub truth: Vec<f64>,
    }

    /// A 300-config LV execution-time fixture, built once per test binary.
    pub fn lv_exec_fixture() -> &'static Fixture {
        static FIX: OnceLock<Fixture> = OnceLock::new();
        FIX.get_or_init(|| {
            let spec = lv();
            let sim = Simulator::new();
            let mut rng = ChaCha8Rng::seed_from_u64(2021);
            let pool = sample_pool(&spec, &sim.platform, 300, &mut rng);
            let oracle = PoolOracle::precompute(
                SimOracle::new(sim, spec, Objective::ExecutionTime, 99),
                &pool,
            );
            let truth = oracle.truth_for(&pool);
            Fixture {
                pool,
                oracle,
                truth,
            }
        })
    }

    /// The best objective value in the fixture pool.
    pub fn best_truth(fix: &Fixture) -> f64 {
        fix.truth.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Truth value of a given configuration.
    pub fn truth_of(fix: &Fixture, config: &[i64]) -> f64 {
        let i = fix
            .pool
            .iter()
            .position(|c| c == config)
            .expect("config from pool");
        fix.truth[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_cost_sums_coupled_and_solo() {
        let run = TunerRun {
            measured: vec![Measurement {
                config: vec![1],
                value: 5.0,
                exec_time: 5.0,
                computer_time: 0.5,
            }],
            component_runs: vec![SoloMeasurement {
                component: 0,
                values: vec![1],
                value: 2.0,
                exec_time: 2.0,
                computer_time: 0.1,
            }],
            pool_scores: vec![],
            best_predicted: vec![1],
        };
        assert_eq!(run.collection_cost(Objective::ExecutionTime), 7.0);
        assert!((run.collection_cost(Objective::ComputerTime) - 0.6).abs() < 1e-12);
        assert_eq!(run.runs_used(), 1);
    }

    #[test]
    fn select_top_unmeasured_skips_measured() {
        let scores = [3.0, 1.0, 2.0, 0.5];
        let measured = [false, true, false, false];
        assert_eq!(select_top_unmeasured(&scores, &measured, 2), vec![3, 2]);
    }

    #[test]
    fn random_unmeasured_is_distinct_and_free() {
        let measured = [true, false, false, true, false];
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        use rand::SeedableRng;
        let picked = random_unmeasured(&measured, 10, &mut rng);
        assert_eq!(picked.len(), 3);
        for &i in &picked {
            assert!(!measured[i]);
        }
    }
}
