//! ALpH — black-box component combination (paper §4, evaluated §7.5).
//!
//! The ablation of CEAL's white-box combiner: instead of max/sum, ALpH
//! *learns* the combination. For each measured workflow configuration it
//! builds a feature row `[params…, v_1, …, v_J]` — the configuration plus
//! every component model's solo prediction — and trains a boosted-tree
//! model `M'_0` mapping that row to the measured workflow value. Sample
//! selection is plain active learning driven by `M'_0`.
//!
//! Its deficiency (which §7.5 quantifies): it ignores the known workflow
//! structure, so the combination itself must be learned from expensive
//! coupled runs.

use super::{measure_indices, random_unmeasured, Autotuner, TunerRun};
use crate::acm::ComponentModels;
use crate::features::FeatureMap;
use crate::history::ComponentHistory;
use crate::oracle::{MeasureError, Measurement, Oracle, SoloMeasurement};
use ceal_ml::{Dataset, GbtParams, GradientBoosting, Regressor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The ALpH tuner.
#[derive(Clone)]
pub struct Alph {
    /// Number of active-learning batches.
    pub iterations: usize,
    /// Fraction of the budget spent on component solo runs when no history
    /// is available.
    pub m_r_fraction: f64,
    /// Historical component measurements; free when present.
    pub history: Option<Arc<ComponentHistory>>,
    /// Component models fitted from `history`, built once per instance.
    hist_models: std::sync::OnceLock<Arc<ComponentModels>>,
}

impl Alph {
    /// ALpH without historical measurements.
    pub fn new() -> Self {
        Self {
            iterations: 5,
            m_r_fraction: 0.5,
            history: None,
            hist_models: std::sync::OnceLock::new(),
        }
    }

    /// ALpH reusing historical component measurements.
    pub fn with_history(history: Arc<ComponentHistory>) -> Self {
        Self {
            iterations: 5,
            m_r_fraction: 0.0,
            history: Some(history),
            hist_models: std::sync::OnceLock::new(),
        }
    }

    /// Builds the augmented feature row for one configuration.
    fn augmented_row(
        fm: &FeatureMap,
        models: &ComponentModels,
        ranges: &[std::ops::Range<usize>],
        config: &[i64],
    ) -> Vec<f64> {
        let mut row = fm.encode(config);
        for (j, r) in ranges.iter().enumerate() {
            row.push(models.predict(j, &config[r.clone()]));
        }
        row
    }

    fn fit_combiner(rows: &[Vec<f64>], measured: &[Measurement], seed: u64) -> GradientBoosting {
        let ys: Vec<f64> = measured.iter().map(|m| m.value).collect();
        let mut gbt = GradientBoosting::new(GbtParams::small_sample(seed));
        gbt.fit(&Dataset::from_rows(rows, &ys));
        gbt
    }
}

impl Default for Alph {
    fn default() -> Self {
        Self::new()
    }
}

impl Autotuner for Alph {
    fn name(&self) -> &'static str {
        "ALpH"
    }

    fn try_run(
        &self,
        oracle: &dyn Oracle,
        pool: &[Vec<i64>],
        budget: usize,
        seed: u64,
    ) -> Result<TunerRun, MeasureError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spec = oracle.spec();
        let fm = FeatureMap::for_workflow(spec);
        let ranges = spec.param_ranges();

        // Component models (historical or freshly measured).
        // At least one component round is required without history.
        let m_r = if self.history.is_some() {
            0
        } else {
            (((budget as f64) * self.m_r_fraction).round() as usize).clamp(1, budget)
        };
        let mut component_runs: Vec<SoloMeasurement> = Vec::new();
        let mut comp_data = match &self.history {
            Some(h) => (**h).clone(),
            None => ComponentHistory::empty(spec.components.len()),
        };
        for j in 0..spec.components.len() {
            for _ in 0..m_r {
                let values = spec.sample_component_feasible(oracle.platform(), j, &mut rng);
                let meas = oracle.try_measure_component(j, &values)?;
                comp_data.push(j, values, meas.value);
                component_runs.push(meas);
            }
        }
        let models = if self.history.is_some() {
            Arc::clone(
                self.hist_models
                    .get_or_init(|| Arc::new(ComponentModels::fit(spec, &comp_data, 0xC0))),
            )
        } else {
            Arc::new(ComponentModels::fit(spec, &comp_data, seed))
        };

        // Pre-compute augmented rows for the whole pool.
        let pool_rows: Vec<Vec<f64>> = pool
            .iter()
            .map(|c| Self::augmented_row(&fm, &models, &ranges, c))
            .collect();

        let coupled_budget = budget.saturating_sub(m_r).max(1);
        let iters = self.iterations.clamp(1, coupled_budget);
        let batch = (coupled_budget / iters).max(1);
        let mut measured_idx = vec![false; pool.len()];
        let mut measured: Vec<Measurement> = Vec::with_capacity(coupled_budget);
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(coupled_budget);

        let first = random_unmeasured(&measured_idx, batch.min(coupled_budget), &mut rng);
        for &i in &first {
            rows.push(pool_rows[i].clone());
        }
        measure_indices(oracle, pool, &first, &mut measured_idx, &mut measured)?;

        let mut model = Self::fit_combiner(&rows, &measured, seed);
        while measured.len() < coupled_budget {
            let take = batch.min(coupled_budget - measured.len());
            let mut cand: Vec<usize> = (0..pool.len()).filter(|&i| !measured_idx[i]).collect();
            cand.sort_by(|&a, &b| {
                model
                    .predict_row(&pool_rows[a])
                    .total_cmp(&model.predict_row(&pool_rows[b]))
                    .then(a.cmp(&b))
            });
            cand.truncate(take);
            if cand.is_empty() {
                break;
            }
            for &i in &cand {
                rows.push(pool_rows[i].clone());
            }
            measure_indices(oracle, pool, &cand, &mut measured_idx, &mut measured)?;
            model = Self::fit_combiner(&rows, &measured, seed ^ measured.len() as u64);
        }

        let scores: Vec<f64> = pool_rows.iter().map(|r| model.predict_row(r)).collect();
        Ok(TunerRun::from_scores(
            pool,
            scores,
            measured,
            component_runs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{lv_exec_fixture, truth_of};
    use super::*;

    #[test]
    fn budget_split_between_solo_and_coupled() {
        let fix = lv_exec_fixture();
        let run = Alph::new().run(&fix.oracle, &fix.pool, 40, 0);
        assert_eq!(run.component_runs.len(), 2 * 20);
        assert!(run.runs_used() <= 20);
    }

    #[test]
    fn with_history_uses_full_budget_for_coupled_runs() {
        let fix = lv_exec_fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let hist = Arc::new(ComponentHistory::collect(&fix.oracle, 80, &mut rng));
        let run = Alph::with_history(hist).run(&fix.oracle, &fix.pool, 25, 0);
        assert!(run.component_runs.is_empty());
        assert_eq!(run.runs_used(), 25);
    }

    #[test]
    fn deterministic_per_seed() {
        let fix = lv_exec_fixture();
        let a = Alph::new().run(&fix.oracle, &fix.pool, 30, 4);
        let b = Alph::new().run(&fix.oracle, &fix.pool, 30, 4);
        assert_eq!(a.best_predicted, b.best_predicted);
    }

    #[test]
    fn recommendation_is_reasonable() {
        let fix = lv_exec_fixture();
        let run = Alph::new().run(&fix.oracle, &fix.pool, 40, 2);
        let v = truth_of(fix, &run.best_predicted);
        let mut sorted = fix.truth.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert!(
            v <= sorted[sorted.len() / 4],
            "ALpH pick {v} not in top quartile"
        );
    }
}
