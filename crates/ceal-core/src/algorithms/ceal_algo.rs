//! CEAL — Component-based Ensemble Active Learning (paper Alg. 1).
//!
//! Phase 1 (lines 1–6): spend `m_R` of the budget running each component
//! standalone on random configurations (or reuse historical measurements
//! for free), train one boosted-tree model per component, and combine them
//! with the objective's analytical coupling function into the low-fidelity
//! model `M_L`.
//!
//! Phase 2 (lines 7–28): seed the measurement set with `m_0/2` random pool
//! configurations plus the `m_B` best according to `M_L`; then iterate:
//! measure, detect whether the evolving high-fidelity model `M_H` has
//! become the better ranker (summed top-1/2/3 recall on the measured data,
//! lines 17–19), top up with random samples when `M_H`'s view of the
//! measured data looks biased (lines 20–22), switch the selection model
//! and convert unspent random budget into bigger batches on a switch
//! (lines 23–24), and finally return `M_H`.

use super::{
    encode_pool, fit_surrogate_kind, measure_indices, random_unmeasured, select_top_unmeasured,
    Autotuner, SurrogateKind, TunerRun,
};
use crate::acm::{CombineFn, ComponentModels, LowFidelityModel};
use crate::features::FeatureMap;
use crate::history::ComponentHistory;
use crate::metrics::{recall_score, top_n};
use crate::oracle::{MeasureError, Oracle, SoloMeasurement};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// When the selection model may switch from `M_L` to `M_H`.
///
/// `Dynamic` is the paper's design (lines 16–24); the other modes exist for
/// the `ablation-switch` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchMode {
    /// Switch when `M_H`'s summed top-1/2/3 recall reaches `M_L`'s.
    #[default]
    Dynamic,
    /// Never switch: `M_L` selects samples for the whole run.
    NeverSwitch,
    /// Switch as soon as `M_H` has been trained once.
    Immediate,
}

/// Hyperparameters of CEAL (paper §6 and Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CealParams {
    /// Fraction of the budget spent on component solo runs (`m_R / m`).
    /// Ignored (treated as 0) when historical measurements are supplied.
    pub m_r_fraction: f64,
    /// Upper bound on random samples as a fraction of the budget
    /// (`m_0 / m`).
    pub m0_fraction: f64,
    /// Number of iterations `I`.
    pub iterations: usize,
    /// Model-switch policy (ablation knob; `Dynamic` is the paper's).
    pub switch_mode: SwitchMode,
    /// Whether the bias-guard random top-up (Alg. 1 lines 20–22) is active
    /// (ablation knob; `true` is the paper's).
    pub random_topup: bool,
    /// Surrogate family for `M_H` (ablation knob; boosted trees is the
    /// paper's).
    pub surrogate: SurrogateKind,
}

impl Default for CealParams {
    fn default() -> Self {
        Self::without_history()
    }
}

impl CealParams {
    /// Defaults without historical measurements (`m_R ≈ 0.4 m`,
    /// `m_0 ≈ 0.1 m`, `I = 8` — within the paper's recommended
    /// `m_R ∈ [0.25, 0.75]·m` band, selected by the same per-case tuning
    /// §7.3 describes; see EXPERIMENTS.md).
    pub fn without_history() -> Self {
        Self {
            m_r_fraction: 0.4,
            m0_fraction: 0.1,
            iterations: 8,
            switch_mode: SwitchMode::Dynamic,
            random_topup: true,
            surrogate: SurrogateKind::BoostedTrees,
        }
    }

    /// Defaults with historical measurements (`m_R = 0`, `m_0 ≈ 0.15 m`,
    /// `I = 8`; the paper's testbed converged by `I = 3` with histories,
    /// this substrate needs the same `I = 8` as without — Fig. 13a shows
    /// the convergence curve).
    pub fn with_history() -> Self {
        Self {
            m_r_fraction: 0.0,
            m0_fraction: 0.15,
            iterations: 8,
            switch_mode: SwitchMode::Dynamic,
            random_topup: true,
            surrogate: SurrogateKind::BoostedTrees,
        }
    }
}

/// The CEAL tuner.
///
/// ```
/// use ceal_core::{sample_pool, Autotuner, Ceal, CealParams, Oracle, PoolOracle, SimOracle};
/// use ceal_sim::{Objective, Simulator};
/// use rand::SeedableRng;
///
/// let workflow = ceal_apps::lv();
/// let sim = Simulator::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let pool = sample_pool(&workflow, &sim.platform, 150, &mut rng);
/// let oracle = PoolOracle::precompute(
///     SimOracle::new(sim, workflow, Objective::ExecutionTime, 7),
///     &pool,
/// );
///
/// let ceal = Ceal::new(CealParams::without_history());
/// let result = ceal.run(&oracle, &pool, 20, 0);
/// let tuned = oracle.measure(&result.best_predicted);
/// assert!(tuned.exec_time > 0.0);
/// ```
#[derive(Clone, Default)]
pub struct Ceal {
    /// Hyperparameters.
    pub params: CealParams,
    /// Historical component measurements (`D_hist`); when present, phase 1
    /// trains from these without charging the budget.
    pub history: Option<Arc<ComponentHistory>>,
    /// Component models fitted from `history`, built once per tuner
    /// instance (the historical models are fixed data, identical across
    /// repetitions).
    hist_models: std::sync::OnceLock<Arc<ComponentModels>>,
}

impl Ceal {
    /// CEAL without historical measurements.
    pub fn new(params: CealParams) -> Self {
        Self {
            params,
            history: None,
            hist_models: std::sync::OnceLock::new(),
        }
    }

    /// CEAL reusing historical component measurements.
    pub fn with_history(params: CealParams, history: Arc<ComponentHistory>) -> Self {
        Self {
            params,
            history: Some(history),
            hist_models: std::sync::OnceLock::new(),
        }
    }
}

impl Autotuner for Ceal {
    fn name(&self) -> &'static str {
        "CEAL"
    }

    fn try_run(
        &self,
        oracle: &dyn Oracle,
        pool: &[Vec<i64>],
        budget: usize,
        seed: u64,
    ) -> Result<TunerRun, MeasureError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spec = oracle.spec();
        let fm = FeatureMap::for_workflow(spec);
        let m = budget;

        // ---- Phase 1: component models and the low-fidelity model ----
        // Without history at least one component round is required to
        // build the component models (degenerate budgets still work).
        let m_r = if self.history.is_some() {
            0
        } else {
            (((m as f64) * self.params.m_r_fraction).round() as usize).clamp(1, m)
        };
        let mut component_runs: Vec<SoloMeasurement> = Vec::new();
        let mut comp_data = match &self.history {
            Some(h) => (**h).clone(),
            None => ComponentHistory::empty(spec.components.len()),
        };
        for j in 0..spec.components.len() {
            for _ in 0..m_r {
                let values = spec.sample_component_feasible(oracle.platform(), j, &mut rng);
                let meas = oracle.try_measure_component(j, &values)?;
                comp_data.push(j, values, meas.value);
                component_runs.push(meas);
            }
        }
        let combine = CombineFn::for_objective(oracle.objective());
        let comp_models = if self.history.is_some() {
            Arc::clone(
                self.hist_models
                    .get_or_init(|| Arc::new(ComponentModels::fit(spec, &comp_data, 0xC0))),
            )
        } else {
            Arc::new(ComponentModels::fit(spec, &comp_data, seed))
        };
        let ml = LowFidelityModel::new(spec, comp_models, combine);

        // ---- Phase 2: dynamic ensemble active learning ----
        let coupled_budget = m.saturating_sub(m_r).max(1);
        let m0 = (((m as f64) * self.params.m0_fraction).round() as usize).min(coupled_budget);
        let i_total = self.params.iterations.max(1);
        let mut m0_used = (m0 / 2).max(1).min(coupled_budget); // m0' (line 7)
                                                               // Line 8, rounded up so integer division does not strand budget;
                                                               // the final staging below takes whatever remains.
        let mut m_b = (coupled_budget.saturating_sub(m0)).div_ceil(i_total).max(1);

        let mut measured_idx = vec![false; pool.len()];
        let mut measured = Vec::with_capacity(coupled_budget);
        let mut runs_left = coupled_budget;

        // The pool is fixed for the whole run: encode it once for batched
        // surrogate scoring. Measured configurations are encoded as they
        // arrive, keeping `enc_meas` aligned with `measured`.
        let enc_pool = encode_pool(&fm, pool);
        let mut enc_meas = ceal_ml::Dataset::new(fm.n_features());

        // Line 7: m0/2 random seeds.
        let seeds = random_unmeasured(&measured_idx, m0_used.min(runs_left), &mut rng);
        // Lines 9–10: top m_B by the low-fidelity model.
        let ml_scores = ml.score_all(pool);
        let mut batch = seeds;
        for i in &batch {
            measured_idx[*i] = true;
        }
        let top = select_top_unmeasured(
            &ml_scores,
            &measured_idx,
            m_b.min(runs_left.saturating_sub(batch.len())),
        );
        for i in &batch {
            measured_idx[*i] = false;
        }
        batch.extend(top);

        let mut using_high = false; // line 11: M = M_L
        let mut mh: Option<Box<dyn ceal_ml::Regressor>> = None; // line 12

        for i in 1..=i_total {
            if batch.is_empty() || runs_left == 0 {
                break;
            }
            // Line 14: measure C_meas.
            batch.truncate(runs_left);
            let new_start = measured.len();
            measure_indices(oracle, pool, &batch, &mut measured_idx, &mut measured)?;
            runs_left -= measured.len() - new_start;
            batch.clear();
            for mm in &measured[new_start..] {
                enc_meas.push_row(&fm.encode(&mm.config), 0.0);
            }

            let mut random_topup = 0usize;
            if !using_high && self.params.switch_mode != SwitchMode::NeverSwitch {
                // Lines 17–24: model switch detection on the data measured
                // so far. The *previous* M_H (before retraining on the new
                // batch) is validated against the enlarged measured set.
                if let (Some(mh), true) = (&mh, measured.len() >= 3) {
                    let truths: Vec<f64> = measured.iter().map(|mm| mm.value).collect();
                    let mh_scores = mh.predict_batch(&enc_meas);
                    let ml_scores_meas: Vec<f64> =
                        measured.iter().map(|mm| ml.score(&mm.config)).collect();
                    let s_h: f64 = (1..=3).map(|n| recall_score(n, &mh_scores, &truths)).sum();
                    let s_l: f64 = (1..=3)
                        .map(|n| recall_score(n, &ml_scores_meas, &truths))
                        .sum();

                    // Line 20: is M_H's top-3 within the actual top half of
                    // the measured set? If not, suspect bias; add randoms.
                    let half = (measured.len() / 2).max(3);
                    let top3_mh = top_n(&mh_scores, 3);
                    let top_half_actual = top_n(&truths, half);
                    let agree = top3_mh
                        .iter()
                        .filter(|i| top_half_actual.contains(i))
                        .count();
                    if self.params.random_topup && agree < 3 && m0 > m0_used {
                        random_topup = ((m0 - m0_used) / 2).max(1);
                        m0_used += random_topup;
                    }
                    // Lines 23–24: switch when M_H ranks at least as well
                    // (or unconditionally under the Immediate ablation).
                    if s_h >= s_l || self.params.switch_mode == SwitchMode::Immediate {
                        using_high = true;
                        if i < i_total {
                            m_b += (m0.saturating_sub(m0_used)) / (i_total - i);
                        }
                    }
                }
            }

            // Line 25: train/refine M_H on all measurements.
            mh = Some(fit_surrogate_kind(
                self.params.surrogate,
                &fm,
                &measured,
                seed ^ (i as u64) << 16,
            ));

            if i == i_total || runs_left == 0 {
                break;
            }

            // Lines 26–27: evaluate the remaining pool with the selected
            // model and stage the next batch.
            let scores = if using_high {
                let model = mh.as_ref().expect("M_H trained before any switch");
                model.predict_batch(&enc_pool)
            } else {
                ml_scores.clone()
            };
            // The final staging consumes the entire remaining budget so the
            // tuner always spends exactly its allotment.
            let take = if i + 1 == i_total {
                runs_left
            } else {
                m_b.min(runs_left)
            };
            batch = select_top_unmeasured(&scores, &measured_idx, take);
            if random_topup > 0 {
                for bi in &batch {
                    measured_idx[*bi] = true;
                }
                let extra = random_unmeasured(
                    &measured_idx,
                    random_topup.min(runs_left.saturating_sub(batch.len())),
                    &mut rng,
                );
                for bi in &batch {
                    measured_idx[*bi] = false;
                }
                batch.extend(extra);
            }
        }

        // Return M_H (line 28); the searcher ranks the pool with it.
        let mh =
            mh.unwrap_or_else(|| fit_surrogate_kind(self.params.surrogate, &fm, &measured, seed));
        let scores = mh.predict_batch(&enc_pool);
        Ok(TunerRun::from_scores(
            pool,
            scores,
            measured,
            component_runs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{best_truth, lv_exec_fixture, truth_of};
    use super::super::RandomSampling;
    use super::*;
    use crate::metrics::mean;

    #[test]
    fn respects_coupled_budget() {
        let fix = lv_exec_fixture();
        let ceal = Ceal::new(CealParams::without_history());
        let run = ceal.run(&fix.oracle, &fix.pool, 50, 0);
        // m_R = 0.4·50 = 20 → at most 30 coupled runs.
        assert!(
            run.runs_used() <= 30,
            "used {} coupled runs",
            run.runs_used()
        );
        // Component runs: m_R per component, 2 components.
        assert_eq!(run.component_runs.len(), 2 * 20);
    }

    #[test]
    fn history_replaces_component_budget() {
        let fix = lv_exec_fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let hist = Arc::new(ComponentHistory::collect(&fix.oracle, 100, &mut rng));
        let ceal = Ceal::with_history(CealParams::with_history(), hist);
        let run = ceal.run(&fix.oracle, &fix.pool, 25, 0);
        assert!(run.component_runs.is_empty());
        assert!(run.runs_used() <= 25);
        assert!(
            run.runs_used() >= 10,
            "history should free budget: {}",
            run.runs_used()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let fix = lv_exec_fixture();
        let ceal = Ceal::new(CealParams::without_history());
        let a = ceal.run(&fix.oracle, &fix.pool, 40, 9);
        let b = ceal.run(&fix.oracle, &fix.pool, 40, 9);
        assert_eq!(a.best_predicted, b.best_predicted);
        assert_eq!(a.pool_scores, b.pool_scores);
    }

    #[test]
    fn beats_random_sampling_on_average() {
        let fix = lv_exec_fixture();
        let ceal = Ceal::new(CealParams::without_history());
        let c: Vec<f64> = (0..10)
            .map(|s| truth_of(fix, &ceal.run(&fix.oracle, &fix.pool, 50, s).best_predicted))
            .collect();
        let r: Vec<f64> = (0..10)
            .map(|s| {
                truth_of(
                    fix,
                    &RandomSampling
                        .run(&fix.oracle, &fix.pool, 50, s)
                        .best_predicted,
                )
            })
            .collect();
        let best = best_truth(fix);
        assert!(
            mean(&c) < mean(&r),
            "CEAL ({:.2}) should beat RS ({:.2}); pool best {:.2}",
            mean(&c),
            mean(&r),
            best
        );
    }

    #[test]
    fn finds_near_optimal_configurations() {
        let fix = lv_exec_fixture();
        let ceal = Ceal::new(CealParams::without_history());
        let vals: Vec<f64> = (0..10)
            .map(|s| truth_of(fix, &ceal.run(&fix.oracle, &fix.pool, 50, s).best_predicted))
            .collect();
        let best = best_truth(fix);
        assert!(
            mean(&vals) < best * 1.5,
            "CEAL recommendations ({:.2}) far from pool best ({:.2})",
            mean(&vals),
            best
        );
    }
}
