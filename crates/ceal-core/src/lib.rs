//! CEAL — Component-based Ensemble Active Learning.
//!
//! The paper's contribution: auto-tune an in-situ workflow under a tight
//! measurement budget by **bootstrapping** a high-fidelity ML surrogate
//! with a low-fidelity model assembled from per-component performance
//! models through an analytical coupling model (ACM).
//!
//! Crate map (paper section in parentheses):
//!
//! * [`oracle`] — the collector abstraction: measuring a workflow or
//!   component configuration (§2.2's collector).
//! * [`features`] — configuration ↔ ML feature encoding.
//! * [`acm`] — component models + max/sum combination (§4, Eq. 1–2).
//! * [`pool`] — the candidate sample pool `C_pool` (§5).
//! * [`algorithms`] — [`algorithms::Ceal`] (Alg. 1) and the comparison
//!   tuners [`algorithms::RandomSampling`], [`algorithms::ActiveLearning`],
//!   [`algorithms::Geist`], [`algorithms::Alph`] (§7.3), plus the Didona
//!   ensemble ablations (§8.2).
//! * [`metrics`] — recall score (§7.2.2, Eq. 3), MdAPE breakdowns
//!   (§7.4.2), the practicality metric (§7.2.3).
//! * [`history`] — historical component measurements `D_hist` (§7.5).
//! * [`fault`] — job-level fault tolerance for the collector (§7.1's
//!   `MPI_Comm_launch` enhancement, as injection + retry wrappers).
//! * [`journal`] — crash-safe campaigns: a checksummed write-ahead journal
//!   of every measurement, with torn-tail recovery and free replay.
//! * [`prior`] — transfer priors: seeding a campaign's bootstrap phase
//!   with a sibling platform's cached samples.
//! * [`retry`] — the shared retry/backoff policy (seeded jitter,
//!   deadline) used by the collector and the serve client.

pub mod acm;
pub mod algorithms;
pub mod fault;
pub mod features;
pub mod history;
pub mod journal;
pub mod metrics;
pub mod oracle;
pub mod pool;
pub mod prior;
pub mod retry;

pub use acm::{CombineFn, ComponentModels, LowFidelityModel};
pub use algorithms::{encode_pool, fit_surrogate_samples};
pub use algorithms::{
    ActiveLearning, Alph, Autotuner, BanditTuner, BayesOpt, Ceal, CealParams, EnsembleKind,
    EnsembleTuner, Geist, RandomSampling, SurrogateKind, SwitchMode, TunerRun,
};
pub use fault::{FaultInjector, RetryingCollector};
pub use features::FeatureMap;
pub use history::{ComponentHistory, HistoryError};
pub use journal::{
    prepare_campaign, CampaignId, Journal, JournalError, JournalRecord, JournalingOracle,
    OpenReport, ReplayStats,
};
pub use oracle::{MeasureError, Measurement, Oracle, PoolOracle, SimOracle, SoloMeasurement};
pub use pool::sample_pool;
pub use prior::{fit_surrogate_seeded, TransferPrior};
pub use retry::{RetryError, RetryPolicy};
