//! The collector: measuring workflow and component configurations.
//!
//! Auto-tuning algorithms see only this trait; whether a measurement comes
//! from a live DES run ([`SimOracle`]) or a precomputed table
//! ([`PoolOracle`], mirroring the paper's §7.1 pool dataset measured once
//! up front) is invisible to them.
//!
//! Every configuration is measured with a seed derived deterministically
//! from its values, so repeated measurements of the same configuration
//! return the same (noisy) value — exactly like reusing the paper's
//! recorded dataset.

use ceal_sim::{Objective, Platform, SimError, Simulator, WorkflowSpec};
use std::collections::HashMap;

/// One workflow measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The measured configuration (full parameter vector).
    pub config: Vec<i64>,
    /// The optimization-objective value (seconds or core-hours).
    pub value: f64,
    /// Wall-clock execution time, seconds.
    pub exec_time: f64,
    /// Computer time, core-hours.
    pub computer_time: f64,
}

/// One standalone component measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SoloMeasurement {
    /// Component index within the workflow.
    pub component: usize,
    /// The component's parameter values.
    pub values: Vec<i64>,
    /// The objective-aligned value (solo exec seconds or solo core-hours).
    pub value: f64,
    /// Solo execution time, seconds.
    pub exec_time: f64,
    /// Solo computer time, core-hours.
    pub computer_time: f64,
}

/// Why a fallible measurement failed.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// The simulator rejected the run (infeasible configuration, ...).
    Sim(SimError),
    /// The measurement backend failed for a non-simulator reason
    /// (injected fault, lost connection, crashed component, ...).
    Failed(String),
    /// Every retry a policy allowed has failed (see
    /// [`RetryingCollector`](crate::RetryingCollector)).
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u64,
        /// The last attempt's failure, rendered.
        last: String,
    },
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
            Self::Failed(msg) => write!(f, "measurement failed: {msg}"),
            Self::RetriesExhausted { attempts, last } => {
                write!(f, "failed {attempts} consecutive attempts: {last}")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<SimError> for MeasureError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

/// A measurement source for one workflow under one objective.
///
/// The fallible `try_*` methods are the primitives every oracle
/// implements; the panicking `measure`/`measure_component` are provided
/// conveniences for contexts (examples, fixtures) that own their inputs
/// and treat a failure as a programming error. Everything on a production
/// path — tuners via [`Autotuner::try_run`](crate::Autotuner::try_run),
/// the serve layer, the bench CLI — uses the `try_*` plumbing so faults
/// and exhausted retries surface as typed [`MeasureError`]s end to end.
pub trait Oracle: Sync {
    /// The workflow being tuned.
    fn spec(&self) -> &WorkflowSpec;
    /// The hardware platform measurements run on.
    fn platform(&self) -> &Platform;
    /// The optimization objective.
    fn objective(&self) -> Objective;
    /// Measures a coupled workflow run, returning a typed error when the
    /// backend fails (infeasible configuration, injected fault, exhausted
    /// retries, journal I/O, ...).
    fn try_measure(&self, config: &[i64]) -> Result<Measurement, MeasureError>;
    /// Fallible variant of [`Oracle::measure_component`] for standalone
    /// component runs.
    fn try_measure_component(
        &self,
        component: usize,
        values: &[i64],
    ) -> Result<SoloMeasurement, MeasureError>;
    /// Measures a coupled workflow run.
    ///
    /// # Panics
    /// Panics if the measurement fails — callers must only measure
    /// configurations drawn from the feasible pool or component grids, and
    /// should use [`Oracle::try_measure`] when the backend itself can fail.
    fn measure(&self, config: &[i64]) -> Measurement {
        self.try_measure(config)
            .unwrap_or_else(|e| panic!("measurement of {config:?} failed: {e}"))
    }
    /// Measures a standalone component run.
    ///
    /// # Panics
    /// Panics if the measurement fails; see [`Oracle::measure`].
    fn measure_component(&self, component: usize, values: &[i64]) -> SoloMeasurement {
        self.try_measure_component(component, values)
            .unwrap_or_else(|e| {
                panic!("solo measurement of component {component} {values:?} failed: {e}")
            })
    }
}

/// FNV-style hash of a configuration, used to derive its measurement seed.
fn config_seed(base: u64, tag: u64, config: &[i64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base.wrapping_mul(0x100_0000_01b3) ^ tag;
    for &v in config {
        h ^= v as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An oracle backed by live simulator runs.
pub struct SimOracle {
    sim: Simulator,
    spec: WorkflowSpec,
    objective: Objective,
    base_seed: u64,
}

impl SimOracle {
    /// Creates an oracle for `spec` under `objective`. `base_seed` selects
    /// the measurement-noise universe (the paper's "one measurement per
    /// configuration" dataset).
    pub fn new(sim: Simulator, spec: WorkflowSpec, objective: Objective, base_seed: u64) -> Self {
        Self {
            sim,
            spec,
            objective,
            base_seed,
        }
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Measures a configuration, returning the simulator error on failure.
    pub fn try_measure(&self, config: &[i64]) -> Result<Measurement, SimError> {
        let seed = config_seed(self.base_seed, 0, config);
        let r = self.sim.run(&self.spec, config, seed)?;
        Ok(Measurement {
            config: config.to_vec(),
            value: r.objective(self.objective),
            exec_time: r.exec_time,
            computer_time: r.computer_time,
        })
    }

    /// Measures a standalone component run, returning the simulator error
    /// on failure.
    pub fn try_measure_component(
        &self,
        component: usize,
        values: &[i64],
    ) -> Result<SoloMeasurement, SimError> {
        let seed = config_seed(self.base_seed, 1 + component as u64, values);
        let r = self.sim.run_solo(&self.spec, component, values, seed)?;
        Ok(SoloMeasurement {
            component,
            values: values.to_vec(),
            value: r.objective(self.objective),
            exec_time: r.exec_time,
            computer_time: r.computer_time,
        })
    }
}

impl Oracle for SimOracle {
    fn spec(&self) -> &WorkflowSpec {
        &self.spec
    }

    fn platform(&self) -> &Platform {
        &self.sim.platform
    }

    fn objective(&self) -> Objective {
        self.objective
    }

    fn try_measure(&self, config: &[i64]) -> Result<Measurement, MeasureError> {
        SimOracle::try_measure(self, config).map_err(MeasureError::Sim)
    }

    fn try_measure_component(
        &self,
        component: usize,
        values: &[i64],
    ) -> Result<SoloMeasurement, MeasureError> {
        SimOracle::try_measure_component(self, component, values).map_err(MeasureError::Sim)
    }
}

/// An oracle that serves pool configurations from a precomputed table
/// (computed once, in parallel) and falls back to the simulator otherwise.
pub struct PoolOracle {
    inner: SimOracle,
    table: HashMap<Vec<i64>, Measurement>,
}

impl PoolOracle {
    /// Measures every pool configuration up front (parallel over configs).
    pub fn precompute(inner: SimOracle, pool: &[Vec<i64>]) -> Self {
        let measurements = ceal_par::parallel_map(pool, |cfg| inner.measure(cfg));
        let table = pool.iter().cloned().zip(measurements).collect();
        Self { inner, table }
    }

    /// Ground-truth objective values aligned with `pool` order.
    pub fn truth_for(&self, pool: &[Vec<i64>]) -> Vec<f64> {
        pool.iter().map(|c| self.table[c].value).collect()
    }

    /// The measurement table.
    pub fn table(&self) -> &HashMap<Vec<i64>, Measurement> {
        &self.table
    }
}

impl Oracle for PoolOracle {
    fn spec(&self) -> &WorkflowSpec {
        self.inner.spec()
    }

    fn platform(&self) -> &Platform {
        self.inner.platform()
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn try_measure(&self, config: &[i64]) -> Result<Measurement, MeasureError> {
        if let Some(m) = self.table.get(config) {
            Ok(m.clone())
        } else {
            Oracle::try_measure(&self.inner, config)
        }
    }

    fn try_measure_component(
        &self,
        component: usize,
        values: &[i64],
    ) -> Result<SoloMeasurement, MeasureError> {
        Oracle::try_measure_component(&self.inner, component, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceal_apps::lv;

    fn oracle() -> SimOracle {
        SimOracle::new(Simulator::new(), lv(), Objective::ExecutionTime, 7)
    }

    #[test]
    fn repeated_measurement_is_identical() {
        let o = oracle();
        let cfg = vec![100, 20, 1, 50, 10, 1];
        assert_eq!(o.measure(&cfg), o.measure(&cfg));
    }

    #[test]
    fn different_configs_get_different_noise() {
        let o = oracle();
        let a = o.measure(&[100, 20, 1, 50, 10, 1]);
        let b = o.measure(&[101, 20, 1, 50, 10, 1]);
        assert_ne!(a.value, b.value);
    }

    #[test]
    fn objective_selects_value() {
        let cfg = vec![100, 20, 1, 50, 10, 1];
        let exec = oracle().measure(&cfg);
        assert_eq!(exec.value, exec.exec_time);
        let comp = SimOracle::new(Simulator::new(), lv(), Objective::ComputerTime, 7).measure(&cfg);
        assert_eq!(comp.value, comp.computer_time);
    }

    #[test]
    fn component_measurement_is_solo() {
        let o = oracle();
        let solo = o.measure_component(0, &[100, 20, 1]);
        let coupled = o.measure(&[100, 20, 1, 50, 10, 1]);
        // The producer's solo time never exceeds its coupled wall time by
        // more than noise (coupling only adds blocking/interference).
        assert!(solo.exec_time <= coupled.exec_time * 1.2);
    }

    #[test]
    fn pool_oracle_serves_from_table() {
        let pool = vec![vec![100, 20, 1, 50, 10, 1], vec![300, 30, 2, 70, 14, 1]];
        let p = PoolOracle::precompute(oracle(), &pool);
        let truth = p.truth_for(&pool);
        assert_eq!(truth.len(), 2);
        assert_eq!(p.measure(&pool[0]).value, truth[0]);
        // Fallback path still works.
        let other = p.measure(&[120, 24, 1, 60, 12, 1]);
        assert!(other.value > 0.0);
    }

    #[test]
    fn infeasible_measurement_errors() {
        let o = oracle();
        assert!(o.try_measure(&[1085, 1, 1, 1085, 1, 1]).is_err());
    }

    #[test]
    fn trait_try_measure_matches_measure_and_errors_on_infeasible() {
        let o = oracle();
        let cfg = vec![100, 20, 1, 50, 10, 1];
        let dyn_o: &dyn Oracle = &o;
        assert_eq!(dyn_o.try_measure(&cfg).unwrap(), o.measure(&cfg));
        let err = dyn_o.try_measure(&[1085, 1, 1, 1085, 1, 1]).unwrap_err();
        assert!(matches!(err, MeasureError::Sim(_)), "got {err}");
        let solo = dyn_o.try_measure_component(0, &[100, 20, 1]).unwrap();
        assert_eq!(solo, o.measure_component(0, &[100, 20, 1]));
    }

    #[test]
    fn pool_oracle_try_measure_serves_table_and_fallback() {
        let pool = vec![vec![100, 20, 1, 50, 10, 1]];
        let p = PoolOracle::precompute(oracle(), &pool);
        let dyn_o: &dyn Oracle = &p;
        assert_eq!(
            dyn_o.try_measure(&pool[0]).unwrap().value,
            p.truth_for(&pool)[0]
        );
        assert!(dyn_o.try_measure(&[120, 24, 1, 60, 12, 1]).is_ok());
        assert!(dyn_o.try_measure(&[1085, 1, 1, 1085, 1, 1]).is_err());
    }
}
