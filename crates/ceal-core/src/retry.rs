//! Unified retry/backoff policy, shared by every layer that retries.
//!
//! The paper's testbed treats a crashed workflow run as a transient fault
//! worth retrying (§7.1); our reproduction retries in three places — the
//! core [`RetryingCollector`](crate::RetryingCollector), the serve client's
//! reconnect path, and ad-hoc test harnesses. All three now share one
//! [`RetryPolicy`]: exponential backoff with *seeded* jitter (so a retry
//! schedule is reproducible from the seed, like everything else in this
//! workspace) and an optional overall deadline.

use std::time::{Duration, Instant};

/// When and how often to retry a fallible operation.
///
/// Attempt 1 runs immediately; attempt `n ≥ 2` waits
/// `base_delay · multiplier^(n-2) · jitter_factor(n)` first, where the
/// jitter factor is drawn deterministically from `seed` in
/// `[1 − jitter, 1 + jitter]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). Clamped to at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt. [`Duration::ZERO`] disables
    /// sleeping entirely (the collector's default: simulated measurements
    /// have no transport to wait out).
    pub base_delay: Duration,
    /// Exponential growth factor per further attempt; values below 1 are
    /// treated as 1 (constant backoff).
    pub multiplier: f64,
    /// Jitter half-width as a fraction of the delay, in `[0, 1]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Overall wall-clock budget: once the next backoff would cross it,
    /// [`RetryPolicy::run`] gives up with `deadline_exceeded` set.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            multiplier: 2.0,
            jitter: 0.2,
            seed: 0,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries up to `max_attempts` times with no sleeping —
    /// right for in-process oracles where a failed attempt costs budget,
    /// not time.
    pub fn no_delay(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::ZERO,
            ..Self::default()
        }
    }

    /// Returns the policy with its jitter seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the policy with an overall deadline installed.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Deterministic jitter factor in `[1 − jitter, 1 + jitter]` for
    /// `attempt` (splitmix64 over the seed/attempt pair).
    fn jitter_factor(&self, attempt: u32) -> f64 {
        if self.jitter <= 0.0 {
            return 1.0;
        }
        let mut h = self
            .seed
            .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.jitter.min(1.0) * (2.0 * unit - 1.0)
    }

    /// Backoff to wait before `attempt` (1-based; attempt 1 never waits).
    pub fn delay_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 || self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.multiplier.max(1.0).powi(attempt as i32 - 2);
        let secs = self.base_delay.as_secs_f64() * exp * self.jitter_factor(attempt);
        Duration::from_secs_f64(secs.clamp(0.0, 3600.0))
    }

    /// Runs `op` (which receives the 1-based attempt number) until it
    /// succeeds, attempts run out, or the deadline would be crossed,
    /// sleeping the backoff between attempts.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, RetryError<E>> {
        let start = Instant::now();
        let max = self.max_attempts.max(1);
        let mut last: Option<E> = None;
        for attempt in 1..=max {
            if attempt > 1 {
                let wait = self.delay_before(attempt);
                if let Some(deadline) = self.deadline {
                    if start.elapsed() + wait >= deadline {
                        return Err(RetryError {
                            attempts: attempt - 1,
                            last: last.expect("attempt > 1 implies a recorded failure"),
                            deadline_exceeded: true,
                        });
                    }
                }
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => last = Some(e),
            }
        }
        Err(RetryError {
            attempts: max,
            last: last.expect("max >= 1 implies at least one attempt"),
            deadline_exceeded: false,
        })
    }
}

/// Every attempt a [`RetryPolicy`] allowed has failed.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryError<E> {
    /// Attempts actually made.
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: E,
    /// Whether the policy stopped early because the deadline would have
    /// been crossed (in which case `attempts < max_attempts`).
    pub deadline_exceeded: bool,
}

impl<E: std::fmt::Display> std::fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.deadline_exceeded {
            write!(
                f,
                "gave up after {} attempts (deadline exceeded): {}",
                self.attempts, self.last
            )
        } else {
            write!(f, "gave up after {} attempts: {}", self.attempts, self.last)
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for RetryError<E> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_returns_immediately() {
        let policy = RetryPolicy::no_delay(5);
        let mut calls = 0;
        let out: Result<u32, RetryError<&str>> = policy.run(|_| {
            calls += 1;
            Ok(42)
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_then_succeeds_on_scheduled_attempt() {
        let policy = RetryPolicy::no_delay(5);
        let out = policy.run(|attempt| {
            if attempt < 3 {
                Err("boom")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 3);
    }

    #[test]
    fn exhaustion_reports_attempts_and_last_error() {
        let policy = RetryPolicy::no_delay(4);
        let err = policy
            .run::<(), _>(|attempt| Err(format!("fail #{attempt}")))
            .unwrap_err();
        assert_eq!(err.attempts, 4);
        assert_eq!(err.last, "fail #4");
        assert!(!err.deadline_exceeded);
        assert!(err.to_string().contains("gave up after 4 attempts"));
    }

    #[test]
    fn deadline_stops_before_sleeping_past_it() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_delay: Duration::from_secs(10),
            multiplier: 2.0,
            jitter: 0.0,
            seed: 0,
            deadline: Some(Duration::from_millis(5)),
        };
        let start = Instant::now();
        let err = policy.run::<(), _>(|_| Err("down")).unwrap_err();
        assert!(err.deadline_exceeded);
        assert_eq!(err.attempts, 1);
        // It must have refused the 10 s sleep, not served it.
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn backoff_grows_exponentially_and_jitter_is_seeded() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(100),
            multiplier: 2.0,
            jitter: 0.2,
            seed: 7,
            deadline: None,
        };
        assert_eq!(policy.delay_before(1), Duration::ZERO);
        let d2 = policy.delay_before(2);
        let d3 = policy.delay_before(3);
        let d4 = policy.delay_before(4);
        // Within ±20% of 100 ms / 200 ms / 400 ms.
        assert!(d2 >= Duration::from_millis(80) && d2 <= Duration::from_millis(120));
        assert!(d3 >= Duration::from_millis(160) && d3 <= Duration::from_millis(240));
        assert!(d4 >= Duration::from_millis(320) && d4 <= Duration::from_millis(480));
        // Same seed → same schedule; different seed → (almost surely) not.
        assert_eq!(policy.clone().delay_before(2), d2);
        let other = policy.clone().with_seed(8);
        assert!(other.delay_before(2) != d2 || other.delay_before(3) != d3);
    }
}
