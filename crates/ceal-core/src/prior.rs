//! Transfer priors: seeding a campaign's bootstrap phase with another
//! platform's measured samples.
//!
//! The paper's core move is bootstrapping the workflow surrogate from a
//! low-fidelity model so the tuner spends its coupled-run budget refining
//! instead of exploring blindly. A sibling platform's cached campaign is
//! another source of exactly that kind of low-fidelity signal: its
//! `(config, value)` samples rank the configuration space roughly right
//! even when the absolute values are off by a hardware-dependent factor.
//! [`TransferPrior`] packages such samples so the bootstrap/history path
//! can fold them into surrogate fits as *prior* history — guidance for
//! sample selection, never the campaign's final answer.

use crate::algorithms::{fit_surrogate_samples, SurrogateKind};
use crate::features::FeatureMap;
use ceal_ml::Regressor;

/// Coupled `(config, value)` samples measured on a *different* platform,
/// used to warm-start a campaign on this one.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPrior {
    /// The sibling campaign's measured samples.
    pub samples: Vec<(Vec<i64>, f64)>,
    /// Where the samples came from (platform fingerprint, usually) — for
    /// logs and reports only.
    pub source: String,
    /// Feature-space distance between the sibling platform and ours, as
    /// computed by whichever nearest-neighbour lookup produced this prior.
    pub distance: f64,
}

impl TransferPrior {
    /// A prior holding `samples` measured on `source` at `distance`.
    pub fn new(samples: Vec<(Vec<i64>, f64)>, source: impl Into<String>, distance: f64) -> Self {
        Self {
            samples,
            source: source.into(),
            distance,
        }
    }

    /// Whether the prior carries any usable samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Training set for a seeded surrogate fit: this campaign's own
    /// measurements plus the prior samples mapped onto their value scale.
    ///
    /// Sibling-platform values live on a different scale (different
    /// hardware, different absolute times), so raw concatenation would let
    /// whichever platform is slower dominate the fit. With at least two
    /// local measurements the prior values are affinely rescaled to match
    /// the local mean and spread — the *ranking* the prior encodes is what
    /// transfers, not the magnitudes. With fewer than two local samples
    /// there is no local scale yet and the prior is used as-is (relative
    /// order is all the selection loop consumes).
    ///
    /// A configuration measured locally always wins over its prior copy:
    /// prior samples whose config already appears in `measured` are
    /// dropped.
    pub fn blend(&self, measured: &[(Vec<i64>, f64)]) -> Vec<(Vec<i64>, f64)> {
        let mut out: Vec<(Vec<i64>, f64)> = measured.to_vec();
        if self.samples.is_empty() {
            return out;
        }
        let fresh: Vec<&(Vec<i64>, f64)> = self
            .samples
            .iter()
            .filter(|(c, _)| !measured.iter().any(|(m, _)| m == c))
            .collect();
        if fresh.is_empty() {
            return out;
        }
        let rescale = affine_rescale(
            &fresh.iter().map(|&&(_, v)| v).collect::<Vec<f64>>(),
            &measured.iter().map(|&(_, v)| v).collect::<Vec<f64>>(),
        );
        out.extend(fresh.into_iter().map(|(c, v)| (c.clone(), rescale(*v))));
        out
    }
}

/// Affine map taking the `from` sample distribution onto the `to`
/// distribution (mean and standard deviation matched). Degenerate inputs —
/// fewer than two target samples, or a spread too small to normalize —
/// fall back to identity or a pure mean shift.
fn affine_rescale(from: &[f64], to: &[f64]) -> impl Fn(f64) -> f64 {
    fn mean_std(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }
    const MIN_STD: f64 = 1e-12;
    let (scale, shift) = if to.len() < 2 || from.is_empty() {
        (1.0, 0.0)
    } else {
        let (fm, fs) = mean_std(from);
        let (tm, ts) = mean_std(to);
        if fs < MIN_STD {
            // A flat prior carries no ranking signal; just center it locally.
            (0.0, tm)
        } else {
            let scale = ts.max(MIN_STD) / fs;
            (scale, tm - fm * scale)
        }
    };
    move |v| v * scale + shift
}

/// Fits the workflow surrogate on `measured` blended with `prior` (see
/// [`TransferPrior::blend`]) — the seed-with-prior-samples entry point the
/// serving layer's bootstrap path uses while a transfer-seeded campaign
/// has too few of its own measurements to stand alone.
pub fn fit_surrogate_seeded(
    kind: SurrogateKind,
    fm: &FeatureMap,
    measured: &[(Vec<i64>, f64)],
    prior: &TransferPrior,
    seed: u64,
) -> Box<dyn Regressor> {
    let blended = prior.blend(measured);
    fit_surrogate_samples(kind, fm, &blended, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prior(samples: Vec<(Vec<i64>, f64)>) -> TransferPrior {
        TransferPrior::new(samples, "fp-test", 0.1)
    }

    #[test]
    fn blend_without_local_samples_keeps_prior_raw() {
        let p = prior(vec![(vec![1], 10.0), (vec![2], 20.0)]);
        let blended = p.blend(&[]);
        assert_eq!(blended, vec![(vec![1], 10.0), (vec![2], 20.0)]);
    }

    #[test]
    fn blend_rescales_prior_onto_local_scale() {
        // Prior: mean 15, std 5. Local: mean 1.5, std 0.5 — ten times
        // smaller. The rescaled prior must land on the local scale with
        // its ordering intact.
        let p = prior(vec![(vec![1], 10.0), (vec![2], 20.0)]);
        let local = vec![(vec![3], 1.0), (vec![4], 2.0)];
        let blended = p.blend(&local);
        assert_eq!(blended.len(), 4);
        let v1 = blended[2].1;
        let v2 = blended[3].1;
        assert!(v1 < v2, "rescaling must preserve order");
        assert!((v1 - 1.0).abs() < 1e-9, "got {v1}");
        assert!((v2 - 2.0).abs() < 1e-9, "got {v2}");
    }

    #[test]
    fn blend_prefers_local_measurement_over_prior_copy() {
        let p = prior(vec![(vec![1], 99.0), (vec![2], 50.0)]);
        let local = vec![(vec![1], 1.0), (vec![9], 2.0)];
        let blended = p.blend(&local);
        // Config [1] appears once, with the locally measured value.
        let ones: Vec<f64> = blended
            .iter()
            .filter(|(c, _)| c == &vec![1])
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(ones, vec![1.0]);
        assert_eq!(blended.len(), 3);
    }

    #[test]
    fn flat_prior_collapses_to_local_mean() {
        let p = prior(vec![(vec![1], 7.0), (vec![2], 7.0)]);
        let local = vec![(vec![3], 1.0), (vec![4], 3.0)];
        let blended = p.blend(&local);
        assert!((blended[2].1 - 2.0).abs() < 1e-9);
        assert!((blended[3].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn seeded_fit_ranks_like_the_prior_before_any_measurement() {
        // Two well-separated configs; the prior says the first is better.
        // A surrogate fitted purely from the prior must agree.
        let fm = FeatureMap::for_workflow(&ceal_apps::lv());
        let pool: Vec<Vec<i64>> = vec![vec![100, 20, 1, 50, 10, 1], vec![900, 2, 4, 700, 2, 4]];
        let p = prior(vec![
            (pool[0].clone(), 1.0),
            (pool[1].clone(), 10.0),
            (vec![120, 18, 1, 60, 9, 1], 1.2),
            (vec![880, 3, 4, 650, 3, 4], 9.0),
        ]);
        let model = fit_surrogate_seeded(SurrogateKind::BoostedTrees, &fm, &[], &p, 7);
        let scores = model.predict_batch(&crate::algorithms::encode_pool(&fm, &pool));
        assert!(
            scores[0] < scores[1],
            "seeded surrogate must reproduce the prior's ranking: {scores:?}"
        );
    }
}
