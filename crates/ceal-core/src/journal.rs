//! Write-ahead measurement journal: crash-safe tuning campaigns.
//!
//! A tuning campaign's only irreplaceable asset is its *measurements* —
//! every coupled run costs real budget, every solo run real machine time.
//! The paper had to enhance Swift/T with `MPI_Comm_launch` so a crashed
//! workflow run would not kill a multi-hour campaign (§7.1); this module
//! extends that durability to the tuner process itself. Every measurement
//! is journaled to disk *before* it is reported to the algorithm
//! (write-ahead), so a campaign killed at any instant can resume and
//! replay its paid-for measurements instead of re-buying them.
//!
//! ## On-disk format
//!
//! ```text
//! +----------+  +-----------+-----------+----------------+  +----- ...
//! | CEALWAL1 |  | len (u32) | crc (u32) | payload (JSON) |  | len ...
//! +----------+  +-----------+-----------+----------------+  +----- ...
//!   8 B magic      big-endian   CRC32 of     one JournalRecord
//!                               payload
//! ```
//!
//! [`Journal::open`] scans the file, verifies every record's CRC, and
//! truncates the first torn/corrupt record and everything after it — a
//! crash mid-write loses at most the record being written, never a
//! committed one. [`Journal::append`] writes header + payload and then
//! `fsync`s (`sync_data`), so a record is committed exactly when the
//! append returns.
//!
//! ## Replay
//!
//! Tuners in this workspace are seed-deterministic: given the same oracle
//! answers they re-issue the same measurement sequence. [`JournalingOracle`]
//! exploits that — it replays journaled measurements by configuration from
//! an in-memory map (zero oracle spend) and journals fresh ones, so
//! `tune --journal x.wal --resume` walks the algorithm through its
//! original decisions for free until it reaches the crash frontier, then
//! continues measuring.
//!
//! ## Crash points (`chaos` feature)
//!
//! Under `--features chaos` the append path exposes four crash points to
//! [`ceal_testutil::chaos`]: `journal.before_write`, `journal.mid_write`
//! (header on disk, payload not), `journal.after_write` (record on disk,
//! not fsynced), and `journal.after_sync` (committed, caller state not yet
//! updated). The chaos tests arm each in turn and assert recovery.

use crate::oracle::{MeasureError, Measurement, Oracle, SoloMeasurement};
use ceal_sim::{Objective, Platform, WorkflowSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Identifies the journal file format (and its version).
pub const JOURNAL_MAGIC: &[u8; 8] = b"CEALWAL1";

/// Upper bound on one record's encoded payload; anything larger during a
/// scan is treated as corruption (a torn length prefix).
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Hits a named chaos crash point (no-op unless built with `chaos`).
#[cfg(feature = "chaos")]
#[inline]
fn crash_point(name: &str) {
    ceal_testutil::chaos::hit(name);
}

#[cfg(not(feature = "chaos"))]
#[inline]
fn crash_point(_name: &str) {}

/// CRC32 (IEEE, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the per-record checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Why a journal operation failed.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file is not a journal (bad magic) or a record cannot be
    /// encoded/decoded.
    Corrupt(String),
    /// The journal belongs to a different campaign, or holds measurements
    /// the caller did not ask to resume.
    Mismatch(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "journal I/O error: {e}"),
            Self::Corrupt(msg) => write!(f, "journal corrupt: {msg}"),
            Self::Mismatch(msg) => write!(f, "journal mismatch: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Everything that fully determines a campaign's measurement sequence.
/// Stored as the journal's first record; a resume against a journal whose
/// campaign differs is rejected instead of silently replaying foreign
/// measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CampaignId {
    /// Workflow name (`LV`, `HS`, `GP`).
    pub workflow: String,
    /// Objective name (`exec`, `comp`).
    pub objective: String,
    /// Algorithm name (or `session:<algo>` for serve sessions).
    pub algo: String,
    /// Coupled-run budget.
    pub budget: u64,
    /// Candidate-pool size.
    pub pool: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Injected-fault probability (0 when faults are off).
    pub failure_rate: f64,
    /// Injected-fault seed.
    pub fault_seed: u64,
}

/// One committed journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// Campaign header; always the first record.
    Start(CampaignId),
    /// A paid-for standalone component measurement.
    Solo {
        /// Component index.
        component: usize,
        /// Component parameter values.
        values: Vec<i64>,
        /// Objective-aligned value.
        value: f64,
        /// Solo execution time, seconds.
        exec_time: f64,
        /// Solo computer time, core-hours.
        computer_time: f64,
    },
    /// A paid-for coupled workflow measurement.
    Coupled {
        /// Full parameter vector.
        config: Vec<i64>,
        /// Objective-aligned value.
        value: f64,
        /// Execution time, seconds.
        exec_time: f64,
        /// Computer time, core-hours.
        computer_time: f64,
        /// Measurement-attempt counter at commit time (restores a serve
        /// session's fault-injection stream position; 0 elsewhere).
        attempt: u64,
    },
    /// An algorithm round / phase boundary. Markers double as commit
    /// points for batched records: a replayer may choose to apply a batch
    /// only once the closing marker exists.
    Marker(String),
}

/// What [`Journal::open`] found on disk.
#[derive(Debug)]
pub struct OpenReport {
    /// Every committed record, in append order.
    pub records: Vec<JournalRecord>,
    /// Torn/corrupt tail bytes dropped during recovery (0 for a clean
    /// file).
    pub truncated_bytes: u64,
}

/// An append-only, checksummed, fsync-on-commit write-ahead journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Whether `append` fsyncs before returning (on by default; tests that
    /// hammer thousands of appends may turn it off).
    sync_on_commit: bool,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, verifying every
    /// record and truncating a torn tail. Returns the journal positioned
    /// for appending plus everything it recovered.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, OpenReport), JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // A file shorter than the magic is a crash during creation: reset
        // it to a fresh journal.
        if bytes.len() < JOURNAL_MAGIC.len() {
            let torn = bytes.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(JOURNAL_MAGIC)?;
            file.sync_data()?;
            return Ok((
                Self {
                    file,
                    path,
                    sync_on_commit: true,
                },
                OpenReport {
                    records: Vec::new(),
                    truncated_bytes: torn,
                },
            ));
        }
        if &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(JournalError::Corrupt(format!(
                "{} does not start with the CEALWAL1 magic",
                path.display()
            )));
        }

        let mut records = Vec::new();
        let mut good = JOURNAL_MAGIC.len();
        loop {
            let rest = &bytes[good..];
            if rest.len() < 8 {
                break; // torn header (or clean end at rest.is_empty())
            }
            let len = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            if len as u32 > MAX_RECORD_LEN || rest.len() < 8 + len {
                break; // absurd length prefix, or torn payload
            }
            let crc = u32::from_be_bytes(rest[4..8].try_into().expect("4 bytes"));
            let payload = &rest[8..8 + len];
            if crc32(payload) != crc {
                break; // bit rot or a torn overwrite
            }
            let Ok(record) = serde_json::from_slice::<JournalRecord>(payload) else {
                break; // checksummed but unintelligible: treat as torn
            };
            records.push(record);
            good += 8 + len;
        }

        let truncated = (bytes.len() - good) as u64;
        if truncated > 0 {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        Ok((
            Self {
                file,
                path,
                sync_on_commit: true,
            },
            OpenReport {
                records,
                truncated_bytes: truncated,
            },
        ))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Enables or disables the fsync on every append. Leave on outside
    /// tests: without it a record is not crash-durable when `append`
    /// returns.
    pub fn set_sync_on_commit(&mut self, on: bool) {
        self.sync_on_commit = on;
    }

    /// Appends and commits one record; when this returns `Ok`, the record
    /// survives a crash.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let payload = serde_json::to_vec(record)
            .map_err(|e| JournalError::Corrupt(format!("cannot encode record: {e}")))?;
        if payload.len() > MAX_RECORD_LEN as usize {
            return Err(JournalError::Corrupt(format!(
                "record of {} bytes exceeds the {} byte limit",
                payload.len(),
                MAX_RECORD_LEN
            )));
        }
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
        header[4..].copy_from_slice(&crc32(&payload).to_be_bytes());

        crash_point("journal.before_write");
        self.file.write_all(&header)?;
        crash_point("journal.mid_write");
        self.file.write_all(&payload)?;
        crash_point("journal.after_write");
        if self.sync_on_commit {
            self.file.sync_data()?;
        }
        crash_point("journal.after_sync");
        Ok(())
    }
}

/// Validates a freshly opened journal against the campaign about to run.
///
/// * Empty journal → writes the `Start` header and returns no records.
/// * Matching header, no further records → fresh start, fine either way.
/// * Matching header plus measurements → requires `resume` (the caller's
///   `--resume` flag), else [`JournalError::Mismatch`] — guarding against
///   accidentally replaying into a half-finished campaign.
/// * Foreign or missing header → [`JournalError::Mismatch`] /
///   [`JournalError::Corrupt`].
pub fn prepare_campaign(
    journal: &mut Journal,
    records: Vec<JournalRecord>,
    id: &CampaignId,
    resume: bool,
) -> Result<Vec<JournalRecord>, JournalError> {
    match records.first() {
        None => {
            journal.append(&JournalRecord::Start(id.clone()))?;
            Ok(records)
        }
        Some(JournalRecord::Start(found)) => {
            if found != id {
                return Err(JournalError::Mismatch(format!(
                    "journal {} belongs to campaign {found:?}, not {id:?}",
                    journal.path().display()
                )));
            }
            if !resume && records.len() > 1 {
                return Err(JournalError::Mismatch(format!(
                    "journal {} already holds {} record(s); pass --resume to continue it",
                    journal.path().display(),
                    records.len() - 1
                )));
            }
            Ok(records)
        }
        Some(other) => Err(JournalError::Corrupt(format!(
            "journal {} does not begin with a Start record (found {other:?})",
            journal.path().display()
        ))),
    }
}

/// Replay/spend counters for one journaled campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Coupled measurements answered from the journal (zero oracle spend).
    pub replayed_coupled: u64,
    /// Coupled measurements paid for and journaled this run.
    pub fresh_coupled: u64,
    /// Solo measurements answered from the journal.
    pub replayed_solo: u64,
    /// Solo measurements paid for and journaled this run.
    pub fresh_solo: u64,
}

struct JournalState {
    journal: Journal,
    coupled: HashMap<Vec<i64>, Measurement>,
    solo: HashMap<(usize, Vec<i64>), SoloMeasurement>,
    stats: ReplayStats,
}

/// An [`Oracle`] middleware that makes the campaign crash-safe: journaled
/// measurements replay from memory for free; fresh ones are journaled
/// (write-ahead, fsync'd) *before* the algorithm sees them.
///
/// Relies on the workspace-wide determinism invariant: measurement values
/// are a pure function of the configuration, so replay-by-configuration is
/// exact regardless of the order the algorithm re-requests them in.
pub struct JournalingOracle<'a> {
    inner: &'a dyn Oracle,
    state: Mutex<JournalState>,
}

impl<'a> JournalingOracle<'a> {
    /// Wraps `inner`, replaying `records` (from [`Journal::open`] /
    /// [`prepare_campaign`]) and journaling everything new to `journal`.
    pub fn new(inner: &'a dyn Oracle, journal: Journal, records: &[JournalRecord]) -> Self {
        let mut coupled = HashMap::new();
        let mut solo = HashMap::new();
        for rec in records {
            match rec {
                JournalRecord::Coupled {
                    config,
                    value,
                    exec_time,
                    computer_time,
                    ..
                } => {
                    coupled.insert(
                        config.clone(),
                        Measurement {
                            config: config.clone(),
                            value: *value,
                            exec_time: *exec_time,
                            computer_time: *computer_time,
                        },
                    );
                }
                JournalRecord::Solo {
                    component,
                    values,
                    value,
                    exec_time,
                    computer_time,
                } => {
                    solo.insert(
                        (*component, values.clone()),
                        SoloMeasurement {
                            component: *component,
                            values: values.clone(),
                            value: *value,
                            exec_time: *exec_time,
                            computer_time: *computer_time,
                        },
                    );
                }
                JournalRecord::Start(_) | JournalRecord::Marker(_) => {}
            }
        }
        Self {
            inner,
            state: Mutex::new(JournalState {
                journal,
                coupled,
                solo,
                stats: ReplayStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalState> {
        // A chaos crash point can unwind while the lock is held; the
        // journal/maps are always mutated after the fallible step, so the
        // state is consistent — recover instead of propagating the poison.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Replay/spend counters so far.
    pub fn stats(&self) -> ReplayStats {
        self.lock().stats
    }

    /// Journals an algorithm round marker.
    pub fn mark(&self, label: &str) -> Result<(), MeasureError> {
        self.lock()
            .journal
            .append(&JournalRecord::Marker(label.to_string()))
            .map_err(|e| MeasureError::Failed(format!("journal append failed: {e}")))
    }
}

impl Oracle for JournalingOracle<'_> {
    fn spec(&self) -> &WorkflowSpec {
        self.inner.spec()
    }

    fn platform(&self) -> &Platform {
        self.inner.platform()
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn try_measure(&self, config: &[i64]) -> Result<Measurement, MeasureError> {
        let mut st = self.lock();
        if let Some(m) = st.coupled.get(config) {
            let m = m.clone();
            st.stats.replayed_coupled += 1;
            return Ok(m);
        }
        let m = self.inner.try_measure(config)?;
        // Write-ahead: the measurement is not reported until it is durable.
        st.journal
            .append(&JournalRecord::Coupled {
                config: m.config.clone(),
                value: m.value,
                exec_time: m.exec_time,
                computer_time: m.computer_time,
                attempt: 0,
            })
            .map_err(|e| MeasureError::Failed(format!("journal append failed: {e}")))?;
        st.stats.fresh_coupled += 1;
        st.coupled.insert(m.config.clone(), m.clone());
        Ok(m)
    }

    fn try_measure_component(
        &self,
        component: usize,
        values: &[i64],
    ) -> Result<SoloMeasurement, MeasureError> {
        let mut st = self.lock();
        let key = (component, values.to_vec());
        if let Some(m) = st.solo.get(&key) {
            let m = m.clone();
            st.stats.replayed_solo += 1;
            return Ok(m);
        }
        let m = self.inner.try_measure_component(component, values)?;
        st.journal
            .append(&JournalRecord::Solo {
                component: m.component,
                values: m.values.clone(),
                value: m.value,
                exec_time: m.exec_time,
                computer_time: m.computer_time,
            })
            .map_err(|e| MeasureError::Failed(format!("journal append failed: {e}")))?;
        st.stats.fresh_solo += 1;
        st.solo.insert(key, m.clone());
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fresh_journal_round_trips_records() {
        let path = ceal_testutil::unique_temp_path("ceal-journal-rt", "wal");
        let recs = vec![
            JournalRecord::Start(CampaignId::default()),
            JournalRecord::Solo {
                component: 1,
                values: vec![4, 2],
                value: 1.5,
                exec_time: 1.5,
                computer_time: 0.2,
            },
            JournalRecord::Coupled {
                config: vec![100, 20, 1],
                value: 2.5,
                exec_time: 2.5,
                computer_time: 0.4,
                attempt: 3,
            },
            JournalRecord::Marker("round-1".into()),
        ];
        {
            let (mut j, report) = Journal::open(&path).expect("open fresh");
            assert!(report.records.is_empty());
            assert_eq!(report.truncated_bytes, 0);
            for r in &recs {
                j.append(r).expect("append");
            }
        }
        let (_j, report) = Journal::open(&path).expect("reopen");
        assert_eq!(report.records, recs);
        assert_eq!(report.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = ceal_testutil::unique_temp_path("ceal-journal-bad", "wal");
        std::fs::write(&path, b"definitely not a journal").expect("write");
        let err = Journal::open(&path).expect_err("must reject");
        assert!(matches!(err, JournalError::Corrupt(_)), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prepare_campaign_guards_header_and_resume() {
        let path = ceal_testutil::unique_temp_path("ceal-journal-prep", "wal");
        let id = CampaignId {
            workflow: "LV".into(),
            algo: "rs".into(),
            ..CampaignId::default()
        };
        // Empty journal: header is written.
        let (mut j, report) = Journal::open(&path).expect("open");
        let recs = prepare_campaign(&mut j, report.records, &id, false).expect("fresh");
        assert!(recs.is_empty());
        j.append(&JournalRecord::Marker("m".into()))
            .expect("append");
        drop(j);
        // Reopen without --resume: rejected (it holds records).
        let (mut j, report) = Journal::open(&path).expect("reopen");
        let err = prepare_campaign(&mut j, report.records, &id, false).expect_err("needs resume");
        assert!(matches!(err, JournalError::Mismatch(_)), "got {err}");
        // With --resume: records come back.
        let (mut j, report) = Journal::open(&path).expect("reopen");
        let recs = prepare_campaign(&mut j, report.records, &id, true).expect("resume");
        assert_eq!(recs.len(), 2);
        // Foreign campaign: rejected even with --resume.
        let other = CampaignId {
            seed: 999,
            ..id.clone()
        };
        let (mut j, report) = Journal::open(&path).expect("reopen");
        let err = prepare_campaign(&mut j, report.records, &other, true).expect_err("foreign");
        assert!(matches!(err, JournalError::Mismatch(_)), "got {err}");
        std::fs::remove_file(&path).ok();
    }
}
