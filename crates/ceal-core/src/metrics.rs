//! Evaluation metrics for auto-tuning algorithms (paper §7.2).
//!
//! All metrics treat *lower objective values as better* (times).

/// Indices of the `n` lowest values, ties broken by index (stable).
pub fn top_n(values: &[f64], n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]).then(a.cmp(&b)));
    idx.truncate(n);
    idx
}

/// Recall score `S_r(n)` (paper Eq. 3): the percentage overlap between the
/// top-`n` configurations by model score and the top-`n` by measured truth.
///
/// Returns 0 for `n == 0` or empty inputs.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn recall_score(n: usize, scores: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(scores.len(), truths.len(), "scores/truths length mismatch");
    if n == 0 || scores.is_empty() {
        return 0.0;
    }
    let pred = top_n(scores, n);
    let act = top_n(truths, n);
    let hits = pred.iter().filter(|i| act.contains(i)).count();
    hits as f64 / n as f64 * 100.0
}

/// Recall scores for `n = 1..=max_n` (paper Figs. 4, 7, 11).
pub fn recall_curve(max_n: usize, scores: &[f64], truths: &[f64]) -> Vec<f64> {
    (1..=max_n)
        .map(|n| recall_score(n, scores, truths))
        .collect()
}

/// MdAPE of model `scores` against `truths`, restricted to the
/// configurations whose *true* value is within the best `fraction`
/// (paper Fig. 6 uses the top 2 % and all).
pub fn mdape_top_fraction(scores: &[f64], truths: &[f64], fraction: f64) -> f64 {
    assert_eq!(scores.len(), truths.len(), "scores/truths length mismatch");
    let n = ((truths.len() as f64) * fraction).ceil() as usize;
    let idx = top_n(truths, n.clamp(1, truths.len()));
    let t: Vec<f64> = idx.iter().map(|&i| truths[i]).collect();
    let s: Vec<f64> = idx.iter().map(|&i| scores[i]).collect();
    ceal_ml::metrics::mdape(&t, &s)
}

/// The practicality metric `N = c / Δp` (paper §7.2.3): workflow uses
/// needed to recoup the data-collection cost `c`, given the per-run
/// improvement `Δp = expert − tuned` of the tuned configuration over the
/// expert recommendation.
///
/// Returns `None` when the tuned configuration is no better than the
/// expert's (the auto-tuning never pays off).
pub fn least_number_of_uses(collection_cost: f64, tuned: f64, expert: f64) -> Option<f64> {
    let delta = expert - tuned;
    if delta <= 0.0 {
        None
    } else {
        Some(collection_cost / delta)
    }
}

/// Arithmetic mean (0 for empty input) — convenience for aggregating
/// repetitions.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_n_is_stable_under_ties() {
        assert_eq!(top_n(&[2.0, 1.0, 2.0, 0.5], 3), vec![3, 1, 0]);
    }

    #[test]
    fn perfect_model_has_full_recall() {
        let truths = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(recall_score(3, &truths, &truths), 100.0);
        assert_eq!(recall_curve(3, &truths, &truths), vec![100.0, 100.0, 100.0]);
    }

    #[test]
    fn anti_correlated_model_has_zero_recall_at_small_n() {
        let truths = [1.0, 2.0, 3.0, 4.0];
        let scores = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(recall_score(1, &scores, &truths), 0.0);
        assert_eq!(recall_score(2, &scores, &truths), 0.0);
        // At n = len the sets necessarily coincide.
        assert_eq!(recall_score(4, &scores, &truths), 100.0);
    }

    #[test]
    fn recall_of_partial_overlap() {
        let truths = [1.0, 2.0, 3.0, 4.0, 5.0];
        let scores = [1.0, 5.0, 2.0, 3.0, 4.0]; // model top-2 = {0, 2}, actual {0, 1}
        assert_eq!(recall_score(2, &scores, &truths), 50.0);
    }

    #[test]
    fn mdape_top_fraction_restricts_to_best() {
        // truths: best two are indices 0, 1. Model is exact there, 100% off
        // elsewhere.
        let truths = [1.0, 2.0, 10.0, 20.0];
        let scores = [1.0, 2.0, 20.0, 40.0];
        assert_eq!(mdape_top_fraction(&scores, &truths, 0.5), 0.0);
        assert!(mdape_top_fraction(&scores, &truths, 1.0) > 0.0);
    }

    #[test]
    fn practicality_examples() {
        // Cost 300 core-hours, saves 0.5 core-hours per run → 600 uses.
        assert_eq!(least_number_of_uses(300.0, 3.5, 4.0), Some(600.0));
        assert_eq!(least_number_of_uses(300.0, 4.5, 4.0), None);
        assert_eq!(least_number_of_uses(300.0, 4.0, 4.0), None);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
