//! Historical component measurements `D_hist` (paper §7.5).
//!
//! Component applications are reused across workflows and standalone
//! studies, so configuration–performance samples from earlier solo runs are
//! often available for free. CEAL folds them into component-model training
//! without charging them against the tuning budget; the paper measured 500
//! random solo configurations per configurable component for this purpose.

use crate::oracle::{MeasureError, Oracle, SoloMeasurement};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Why two histories could not be combined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// The histories describe workflows with different component counts.
    ComponentCountMismatch {
        /// Component count of the receiving history.
        ours: usize,
        /// Component count of the incoming history.
        theirs: usize,
    },
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ComponentCountMismatch { ours, theirs } => write!(
                f,
                "component count mismatch: history has {ours} components, incoming has {theirs}"
            ),
        }
    }
}

impl std::error::Error for HistoryError {}

/// Per-component solo configuration–value samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct ComponentHistory {
    /// `samples[j]` holds `(values, objective_value)` pairs for component
    /// `j`.
    pub samples: Vec<Vec<(Vec<i64>, f64)>>,
}

impl ComponentHistory {
    /// An empty history for a workflow with `n_components` components.
    pub fn empty(n_components: usize) -> Self {
        Self {
            samples: vec![Vec::new(); n_components],
        }
    }

    /// Measures `per_component` random solo configurations of every
    /// component (the paper's 500-sample historical dataset).
    ///
    /// Components whose parameter grid admits fewer distinct configurations
    /// get correspondingly fewer samples (fixed plotters get one).
    pub fn collect<R: Rng>(oracle: &dyn Oracle, per_component: usize, rng: &mut R) -> Self {
        match Self::try_collect(oracle, per_component, rng) {
            Ok((hist, _)) => hist,
            Err(e) => panic!("historical component collection failed: {e}"),
        }
    }

    /// Fallible [`ComponentHistory::collect`]: returns the history together
    /// with the individual solo measurements (so callers that journal or
    /// bill them keep the full records), or the first measurement error.
    pub fn try_collect<R: Rng>(
        oracle: &dyn Oracle,
        per_component: usize,
        rng: &mut R,
    ) -> Result<(Self, Vec<SoloMeasurement>), MeasureError> {
        let spec = oracle.spec();
        let mut samples = Vec::with_capacity(spec.components.len());
        let mut solos = Vec::new();
        for (j, comp) in spec.components.iter().enumerate() {
            let space: f64 = comp.params().iter().map(|p| p.n_options() as f64).product();
            let n = (per_component as f64).min(space) as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let values = spec.sample_component_feasible(oracle.platform(), j, rng);
                let m = oracle.try_measure_component(j, &values)?;
                rows.push((values, m.value));
                solos.push(m);
            }
            samples.push(rows);
        }
        Ok((Self { samples }, solos))
    }

    /// Number of components covered.
    pub fn n_components(&self) -> usize {
        self.samples.len()
    }

    /// Total stored samples.
    pub fn total_samples(&self) -> usize {
        self.samples.iter().map(Vec::len).sum()
    }

    /// Appends a sample for component `j`.
    pub fn push(&mut self, component: usize, values: Vec<i64>, value: f64) {
        self.samples[component].push((values, value));
    }

    /// Persists the history as JSON — component measurements outlive any
    /// one tuning session and are reused across workflows (§7.5), so they
    /// need a durable form.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self).map_err(std::io::Error::other)
    }

    /// Loads a history saved with [`ComponentHistory::save`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
    }

    /// Merges another history collected for the same workflow (e.g. from a
    /// different campaign), component by component.
    ///
    /// Fails without modifying `self` when the component counts differ —
    /// callers holding histories from untrusted sources (files, network
    /// peers) must not bring the process down on a shape mismatch.
    pub fn merge(&mut self, other: &ComponentHistory) -> Result<(), HistoryError> {
        if self.n_components() != other.n_components() {
            return Err(HistoryError::ComponentCountMismatch {
                ours: self.n_components(),
                theirs: other.n_components(),
            });
        }
        for (mine, theirs) in self.samples.iter_mut().zip(&other.samples) {
            mine.extend(theirs.iter().cloned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use ceal_apps::gp;
    use ceal_sim::{Objective, Simulator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn collects_per_component_capped_by_space() {
        let oracle = SimOracle::new(Simulator::new(), gp(), Objective::ComputerTime, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let hist = ComponentHistory::collect(&oracle, 20, &mut rng);
        assert_eq!(hist.n_components(), 4);
        assert_eq!(hist.samples[0].len(), 20); // gray-scott
        assert_eq!(hist.samples[1].len(), 20); // pdf
        assert_eq!(hist.samples[2].len(), 1); // g-plot: single config
        assert_eq!(hist.samples[3].len(), 1); // p-plot
        assert_eq!(hist.total_samples(), 42);
    }

    #[test]
    fn push_appends() {
        let mut h = ComponentHistory::empty(2);
        h.push(1, vec![4, 2], 1.5);
        assert_eq!(h.samples[1], vec![(vec![4, 2], 1.5)]);
    }

    #[test]
    fn save_load_round_trip() {
        let mut h = ComponentHistory::empty(2);
        h.push(0, vec![10, 2], 3.25);
        h.push(1, vec![7], 0.5);
        let path = ceal_testutil::unique_temp_path("ceal-history-roundtrip", "json");
        h.save(&path).unwrap();
        let loaded = ComponentHistory::load(&path).unwrap();
        assert_eq!(loaded, h);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn merge_concatenates_per_component() {
        let mut a = ComponentHistory::empty(2);
        a.push(0, vec![1], 1.0);
        let mut b = ComponentHistory::empty(2);
        b.push(0, vec![2], 2.0);
        b.push(1, vec![3], 3.0);
        a.merge(&b).unwrap();
        assert_eq!(a.samples[0].len(), 2);
        assert_eq!(a.samples[1].len(), 1);
        assert_eq!(a.total_samples(), 3);
    }

    #[test]
    fn merge_rejects_mismatched_shapes() {
        let mut a = ComponentHistory::empty(1);
        a.push(0, vec![1], 1.0);
        let err = a.merge(&ComponentHistory::empty(2)).unwrap_err();
        assert_eq!(
            err,
            HistoryError::ComponentCountMismatch { ours: 1, theirs: 2 }
        );
        // The failed merge must leave the receiver untouched.
        assert_eq!(a.total_samples(), 1);
    }
}
