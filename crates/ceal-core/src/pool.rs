//! The candidate sample pool `C_pool` (paper §5).
//!
//! All configurations an auto-tuning run measures are drawn from a pool of
//! feasible configurations sampled uniformly from the workflow's space. The
//! paper sizes the pool with `p ≈ −n·ln(1−P)` so that with probability `P`
//! the pool contains a configuration in the top `1/n` of the space
//! (p ≈ 2000 for 1/n = 0.2 %, P = 98.2 %).

use ceal_sim::{Platform, WorkflowSpec};
use rand::Rng;

/// Pool size needed so a top-`1/n` configuration lands in the pool with
/// probability `p_target` (paper §5).
pub fn pool_size_for(n: f64, p_target: f64) -> usize {
    assert!(n > 1.0 && (0.0..1.0).contains(&p_target));
    (-n * (1.0 - p_target).ln()).ceil() as usize
}

/// Rejection-samples `size` *feasible* configurations (allocation fits the
/// node cap) uniformly from the workflow's parameter grids.
///
/// # Panics
/// Panics if feasible configurations are so rare that `size` cannot be
/// reached within a generous attempt budget (indicates a mis-specified
/// workflow).
pub fn sample_pool<R: Rng>(
    spec: &WorkflowSpec,
    platform: &Platform,
    size: usize,
    rng: &mut R,
) -> Vec<Vec<i64>> {
    let params = spec.all_params();
    let mut pool = Vec::with_capacity(size);
    let max_attempts = (size as u64).saturating_mul(10_000).max(1_000_000);
    let mut attempts = 0u64;
    while pool.len() < size {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "feasible configurations too rare for {} (found {}/{size})",
            spec.name,
            pool.len()
        );
        let cfg = ceal_sim::config::sample_values(&params, rng);
        if spec.feasible(platform, &cfg) {
            pool.push(cfg);
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceal_apps::{all_workflows, lv};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_pool_size_example() {
        // 1/n = 0.2 %, P = 98.2 % → ≈ 2000 (paper §5).
        let p = pool_size_for(500.0, 0.982);
        assert!((1990..=2020).contains(&p), "got {p}");
    }

    #[test]
    fn sampled_pool_is_feasible_and_sized() {
        let platform = Platform::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for wf in all_workflows() {
            let pool = sample_pool(&wf, &platform, 100, &mut rng);
            assert_eq!(pool.len(), 100);
            for cfg in &pool {
                assert!(wf.feasible(&platform, cfg));
            }
        }
    }

    #[test]
    fn pools_differ_across_seeds() {
        let platform = Platform::default();
        let wf = lv();
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            sample_pool(&wf, &platform, 10, &mut a),
            sample_pool(&wf, &platform, 10, &mut b)
        );
    }

    #[test]
    fn pool_is_deterministic_per_seed() {
        let platform = Platform::default();
        let wf = lv();
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            sample_pool(&wf, &platform, 20, &mut a),
            sample_pool(&wf, &platform, 20, &mut b)
        );
    }
}
