//! Configuration ↔ feature encoding for the ML surrogates.
//!
//! Parameter values are min-max normalized per parameter so tree splits and
//! distance computations (k-NN, GEIST's parameter graph) see comparable
//! scales across parameters whose raw ranges differ by three orders of
//! magnitude (`procs ∈ 2..1085` vs `threads ∈ 1..4`).

use ceal_sim::{ParamDef, WorkflowSpec};

/// Encodes integer configurations of one workflow as normalized f64 rows.
#[derive(Debug, Clone)]
pub struct FeatureMap {
    params: Vec<ParamDef>,
}

impl FeatureMap {
    /// Builds the feature map for a workflow's full parameter vector.
    pub fn for_workflow(spec: &WorkflowSpec) -> Self {
        Self {
            params: spec.all_params(),
        }
    }

    /// Builds a feature map over an explicit parameter list (used for
    /// per-component models).
    pub fn for_params(params: &[ParamDef]) -> Self {
        Self {
            params: params.to_vec(),
        }
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.params.len()
    }

    /// The parameter definitions, in feature order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Encodes one configuration.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn encode(&self, config: &[i64]) -> Vec<f64> {
        assert_eq!(
            config.len(),
            self.params.len(),
            "configuration arity mismatch"
        );
        config
            .iter()
            .zip(&self.params)
            .map(|(&v, p)| {
                let span = (p.hi - p.lo) as f64;
                if span == 0.0 {
                    0.0
                } else {
                    (v - p.lo) as f64 / span
                }
            })
            .collect()
    }

    /// Encodes many configurations.
    pub fn encode_all(&self, configs: &[Vec<i64>]) -> Vec<Vec<f64>> {
        configs.iter().map(|c| self.encode(c)).collect()
    }

    /// Normalized Euclidean distance between two configurations.
    pub fn distance(&self, a: &[i64], b: &[i64]) -> f64 {
        let ea = self.encode(a);
        let eb = self.encode(b);
        ea.iter()
            .zip(&eb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceal_apps::lv;

    #[test]
    fn normalizes_to_unit_range() {
        let fm = FeatureMap::for_workflow(&lv());
        let lo = fm.encode(&[2, 1, 1, 2, 1, 1]);
        let hi = fm.encode(&[1085, 35, 4, 1085, 35, 4]);
        assert!(lo.iter().all(|&x| x == 0.0));
        assert!(hi.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn fixed_params_encode_to_zero() {
        let fm = FeatureMap::for_params(&[ParamDef::fixed("f", 7)]);
        assert_eq!(fm.encode(&[7]), vec![0.0]);
    }

    #[test]
    fn distance_is_scale_invariant() {
        let fm = FeatureMap::for_workflow(&lv());
        // A full-range jump in procs equals a full-range jump in threads.
        let d_procs = fm.distance(&[2, 1, 1, 2, 1, 1], &[1085, 1, 1, 2, 1, 1]);
        let d_threads = fm.distance(&[2, 1, 1, 2, 1, 1], &[2, 1, 4, 2, 1, 1]);
        assert!((d_procs - d_threads).abs() < 1e-12);
    }

    #[test]
    fn encode_all_matches_encode() {
        let fm = FeatureMap::for_workflow(&lv());
        let configs = vec![vec![2, 1, 1, 2, 1, 1], vec![500, 20, 2, 300, 10, 3]];
        let rows = fm.encode_all(&configs);
        assert_eq!(rows[1], fm.encode(&configs[1]));
    }
}
