//! # ceal — in-situ workflow auto-tuning via combined component models
//!
//! A full Rust reproduction of *"Bootstrapping In-situ Workflow Auto-Tuning
//! via Combining Performance Models of Component Applications"* (Shu et al.,
//! SC '21). This facade crate re-exports the workspace:
//!
//! * [`tuner`] (`ceal-core`) — the paper's contribution: configuration
//!   spaces, the analytical coupling model, low/high-fidelity models, the
//!   CEAL algorithm and the RS/AL/GEIST/ALpH comparison algorithms.
//! * [`ml`] (`ceal-ml`) — gradient-boosted trees and friends.
//! * [`sim`] (`ceal-sim`) — the cluster + in-situ workflow simulator that
//!   stands in for the paper's 600-node testbed.
//! * [`apps`] (`ceal-apps`) — the LV / HS / GP workflows and their component
//!   applications (cost models + real mini kernels).
//! * [`staging`] (`ceal-staging`) — the in-process streaming coupling
//!   library (ADIOS stand-in) used by the runnable examples.
//! * [`par`] (`ceal-par`) — the parallel-execution substrate.
//! * [`serve`] (`ceal-serve`) — the tuner as a concurrent TCP service:
//!   sessions, a persistent result cache, and batched prediction.
//!
//! See `examples/quickstart.rs` for the five-minute tour.

pub use ceal_apps as apps;
pub use ceal_core as tuner;
pub use ceal_ml as ml;
pub use ceal_par as par;
pub use ceal_serve as serve;
pub use ceal_sim as sim;
pub use ceal_staging as staging;
