//! End-to-end tuning across the whole stack: workflows (ceal-apps) →
//! simulator (ceal-sim) → oracle/algorithms (ceal-core).

use ceal::sim::{Objective, Simulator};
use ceal::tuner::{
    sample_pool, ActiveLearning, Autotuner, Ceal, CealParams, ComponentHistory, Geist, Oracle,
    PoolOracle, RandomSampling, SimOracle,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, OnceLock};

struct Fix {
    pool: Vec<Vec<i64>>,
    oracle: PoolOracle,
    best: f64,
    median: f64,
}

fn fixture() -> &'static Fix {
    static FIX: OnceLock<Fix> = OnceLock::new();
    FIX.get_or_init(|| {
        let spec = ceal::apps::lv();
        let sim = Simulator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let pool = sample_pool(&spec, &sim.platform, 400, &mut rng);
        let oracle =
            PoolOracle::precompute(SimOracle::new(sim, spec, Objective::ComputerTime, 3), &pool);
        let mut truth = oracle.truth_for(&pool);
        truth.sort_by(|a, b| a.total_cmp(b));
        Fix {
            best: truth[0],
            median: truth[truth.len() / 2],
            pool,
            oracle,
        }
    })
}

fn mean_tuned(algo: &dyn Autotuner, budget: usize, reps: u64) -> f64 {
    let fix = fixture();
    let seeds: Vec<u64> = (0..reps).collect();
    let vals = ceal::par::parallel_map(&seeds, |&s| {
        let run = algo.run(&fix.oracle, &fix.pool, budget, s);
        fix.oracle.measure(&run.best_predicted).value
    });
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[test]
fn every_algorithm_beats_the_pool_median() {
    let algos: Vec<Box<dyn Autotuner>> = vec![
        Box::new(RandomSampling),
        Box::new(Geist::default()),
        Box::new(ActiveLearning::default()),
        Box::new(Ceal::new(CealParams::without_history())),
    ];
    for algo in &algos {
        let v = mean_tuned(algo.as_ref(), 40, 6);
        assert!(
            v < fixture().median,
            "{} tuned {v} worse than the pool median {}",
            algo.name(),
            fixture().median
        );
    }
}

#[test]
fn ceal_beats_random_sampling() {
    let ceal = mean_tuned(&Ceal::new(CealParams::without_history()), 50, 10);
    let rs = mean_tuned(&RandomSampling, 50, 10);
    assert!(ceal < rs, "CEAL {ceal} should beat RS {rs}");
}

#[test]
fn ceal_lands_near_the_pool_best() {
    let fix = fixture();
    let ceal = mean_tuned(&Ceal::new(CealParams::without_history()), 50, 10);
    assert!(
        ceal < fix.best * 1.6,
        "CEAL mean {ceal} too far from pool best {}",
        fix.best
    );
}

#[test]
fn history_frees_the_component_budget() {
    let fix = fixture();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let hist = Arc::new(ComponentHistory::collect(&fix.oracle, 120, &mut rng));
    let with = Ceal::with_history(CealParams::with_history(), hist);
    let run = with.run(&fix.oracle, &fix.pool, 30, 0);
    assert!(run.component_runs.is_empty());
    assert_eq!(run.runs_used(), 30);

    let without = Ceal::new(CealParams::without_history());
    let run2 = without.run(&fix.oracle, &fix.pool, 30, 0);
    assert!(
        run2.runs_used() < 30,
        "m_R must be charged against the budget"
    );
    assert!(!run2.component_runs.is_empty());
}

#[test]
fn tuning_runs_are_reproducible() {
    let fix = fixture();
    let ceal = Ceal::new(CealParams::without_history());
    let a = ceal.run(&fix.oracle, &fix.pool, 30, 5);
    let b = ceal.run(&fix.oracle, &fix.pool, 30, 5);
    assert_eq!(a.best_predicted, b.best_predicted);
    assert_eq!(a.pool_scores, b.pool_scores);
    assert_eq!(
        a.measured.iter().map(|m| &m.config).collect::<Vec<_>>(),
        b.measured.iter().map(|m| &m.config).collect::<Vec<_>>()
    );
}

#[test]
fn collection_cost_matches_measured_sum() {
    let fix = fixture();
    let run = RandomSampling.run(&fix.oracle, &fix.pool, 20, 0);
    let direct: f64 = run.measured.iter().map(|m| m.computer_time).sum();
    assert!((run.collection_cost(Objective::ComputerTime) - direct).abs() < 1e-9);
}
