//! Cross-crate invariants drawn from the paper's observations.

use ceal::sim::{bounds, Objective, Platform, Simulator};
use ceal::tuner::metrics::{recall_curve, recall_score};
use ceal::tuner::{
    CombineFn, ComponentHistory, ComponentModels, LowFidelityModel, Oracle, SimOracle,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// §3: "if any component performs poorly, the workflow is unlikely to
/// achieve high performance" — coupled execution time is bounded below by
/// every component's ideal busy time.
#[test]
fn coupled_time_dominates_component_busy_times() {
    let platform = Platform::default();
    let sim = Simulator::noiseless();
    for spec in ceal::apps::all_workflows() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pool = ceal::tuner::sample_pool(&spec, &platform, 40, &mut rng);
        for cfg in &pool {
            let run = sim.run(&spec, cfg, 0).unwrap();
            let busy = bounds::busy_times(&platform, &spec, cfg);
            let max_busy = busy.iter().cloned().fold(0.0, f64::max);
            assert!(
                run.exec_time >= max_busy * (1.0 - 1e-9),
                "{}: exec {} below bottleneck busy {max_busy}",
                spec.name,
                run.exec_time
            );
            bounds::within_bounds(&platform, &spec, cfg, run.exec_time, 1e-6)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }
}

/// §4/Fig. 4: the low-fidelity model locates good configurations far better
/// than random ordering.
#[test]
fn low_fidelity_model_beats_random_ordering() {
    let spec = ceal::apps::lv();
    let sim = Simulator::new();
    let oracle = SimOracle::new(sim, spec.clone(), Objective::ExecutionTime, 5);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let hist = ComponentHistory::collect(&oracle, 200, &mut rng);
    let ml = LowFidelityModel::new(&spec, ComponentModels::fit(&spec, &hist, 0), CombineFn::Max);

    let platform = Platform::default();
    let pool = ceal::tuner::sample_pool(&spec, &platform, 300, &mut rng);
    let truth: Vec<f64> = pool.iter().map(|c| oracle.measure(c).value).collect();
    let scores = ml.score_all(&pool);

    let curve = recall_curve(10, &scores, &truth);
    let mean_recall: f64 = curve.iter().sum::<f64>() / curve.len() as f64;
    // Random ordering would give ~n/300 ≈ 3 %.
    assert!(
        mean_recall > 20.0,
        "low-fidelity mean recall too low: {mean_recall:.1}%"
    );
}

/// §7.1: computer time = exec_time × nodes × cores.
#[test]
fn computer_time_definition_holds_everywhere() {
    let sim = Simulator::new();
    let platform = Platform::default();
    for spec in ceal::apps::all_workflows() {
        let cfg = ceal::apps::expert_config(&spec.name, Objective::ComputerTime).unwrap();
        let run = sim.run(&spec, &cfg, 1).unwrap();
        let expect = run.exec_time * (run.total_nodes * platform.cores_per_node) as f64 / 3600.0;
        assert!((run.computer_time - expect).abs() < 1e-9);
        assert_eq!(run.total_nodes, spec.total_nodes(&platform, &cfg));
    }
}

/// §2.3: the workflow configuration space dwarfs each component's.
#[test]
fn joint_spaces_are_multiplicatively_larger() {
    for spec in ceal::apps::all_workflows() {
        let max_component: f64 = spec
            .components
            .iter()
            .map(|c| c.params().iter().map(|p| p.n_options() as f64).product())
            .fold(0.0, f64::max);
        assert!(
            spec.space_size() >= max_component * 1e4,
            "{}: joint space not >> component space",
            spec.name
        );
    }
}

/// Eq. 3 sanity on real data: a model's recall of itself is total.
#[test]
fn recall_score_of_truth_is_100() {
    let spec = ceal::apps::hs();
    let sim = Simulator::new();
    let platform = Platform::default();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let pool = ceal::tuner::sample_pool(&spec, &platform, 50, &mut rng);
    let oracle = SimOracle::new(sim, spec, Objective::ExecutionTime, 1);
    let truth: Vec<f64> = pool.iter().map(|c| oracle.measure(c).value).collect();
    for n in [1, 3, 10] {
        assert_eq!(recall_score(n, &truth, &truth), 100.0);
    }
}

/// Solo runs are systematically optimistic versus coupled runs for
/// consumers that get back-pressured (the low-fidelity model's blind spot).
#[test]
fn solo_optimism_gap_exists() {
    let spec = ceal::apps::lv();
    let sim = Simulator::noiseless();
    // Slow consumer: few Voro processes against a fast LAMMPS.
    let cfg = vec![800i64, 30, 1, 4, 4, 1];
    let platform = Platform::default();
    assert!(spec.feasible(&platform, &cfg));
    let coupled = sim.run(&spec, &cfg, 0).unwrap();
    let solo_producer = sim.run_solo(&spec, 0, &cfg[..3], 0).unwrap();
    assert!(
        coupled.components[0].end_time > solo_producer.exec_time * 1.5,
        "back-pressure should slow the producer: coupled {} vs solo {}",
        coupled.components[0].end_time,
        solo_producer.exec_time
    );
    assert!(coupled.components[0].blocked_on_space > 0.0);
}
