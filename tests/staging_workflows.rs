//! Real in-process workflows through the staging library, checking the
//! coupling semantics the simulator models: completeness, ordering, and
//! back-pressure.

use ceal::apps::kernels::grayscott::GrayScottGrid;
use ceal::apps::kernels::histogram::slice_pdfs;
use ceal::apps::kernels::stencil::HeatGrid;
use ceal::staging::{channel, Variable, Workflow};
use std::time::Duration;

#[test]
fn heat_to_stagewrite_moves_every_emission() {
    // HS topology: heat -> (file) sink, here an in-memory accumulator.
    let (mut w, r) = channel("heat->sw", 2, 8 << 20);
    let mut wf = Workflow::new();
    let n = 32usize;
    let outputs = 8u64;

    wf.spawn("heat", move || {
        let mut g = HeatGrid::new(n, 0.2, 0.0);
        g.set(n / 2, n / 2, 50.0);
        for _ in 0..outputs {
            for _ in 0..5 {
                g.step();
            }
            w.put(vec![Variable::from_f64("state", vec![n, n], g.field())])
                .unwrap();
        }
    });

    let (tx, rx) = std::sync::mpsc::channel();
    wf.spawn("stage-write", move || {
        let mut written = Vec::new();
        while let Ok(step) = r.next_step() {
            let state = step.get("state").unwrap().as_f64();
            let total: f64 = state.iter().sum();
            written.push((step.step, total));
        }
        tx.send(written).unwrap();
    });

    wf.join();
    let written = rx.recv().unwrap();
    assert_eq!(written.len(), outputs as usize);
    // Steps in order, and total heat conserved in every emission.
    for (i, (step, total)) in written.iter().enumerate() {
        assert_eq!(*step, i as u64);
        assert!((total - 50.0).abs() < 1e-6, "heat leaked: {total}");
    }
}

#[test]
fn gp_fanout_delivers_to_both_consumers() {
    let (mut w_pdf, r_pdf) = channel("gs->pdf", 1, 1 << 20);
    let (mut w_plot, r_plot) = channel("gs->plot", 1, 1 << 20);
    let mut wf = Workflow::new();
    let side = 24usize;
    let frames = 6u64;

    wf.spawn("gray-scott", move || {
        let mut g = GrayScottGrid::new(side);
        g.seed(side / 2, side / 2, 2);
        for _ in 0..frames {
            for _ in 0..10 {
                g.step();
            }
            let v = Variable::from_f64("u", vec![side, side], g.u());
            w_pdf.put(vec![v.clone()]).unwrap();
            w_plot.put(vec![v]).unwrap();
        }
    });

    let (tx, rx) = std::sync::mpsc::channel();
    for (name, reader) in [("pdf", r_pdf), ("plot", r_plot)] {
        let tx = tx.clone();
        wf.spawn(name, move || {
            let mut count = 0u64;
            while let Ok(step) = reader.next_step() {
                let u = step.get("u").unwrap().as_f64();
                if name == "pdf" {
                    let pdfs = slice_pdfs(&u, side, 16, 0.0, 1.0);
                    assert_eq!(pdfs.len(), side);
                }
                count += 1;
            }
            tx.send((name, count)).unwrap();
        });
    }
    drop(tx);
    wf.join();
    let counts: Vec<(&str, u64)> = rx.iter().collect();
    assert_eq!(counts.len(), 2);
    for (name, count) in counts {
        assert_eq!(count, frames, "consumer {name} missed frames");
    }
}

#[test]
fn slow_consumer_backpressures_fast_producer() {
    let (mut w, r) = channel("fast->slow", 1, 1 << 16);
    let mut wf = Workflow::new();
    let steps = 12u64;

    wf.spawn("fast-producer", move || {
        for i in 0..steps {
            w.put(vec![Variable::from_f64("x", vec![1], &[i as f64])])
                .unwrap();
        }
        assert!(
            w.stats().writer_blocked() > Duration::from_millis(20),
            "producer should have been back-pressured"
        );
    });
    wf.spawn("slow-consumer", move || {
        while let Ok(_step) = r.next_step() {
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    wf.join();
}
