//! Property-based tests (proptest) over the core data structures and
//! simulator invariants, spanning crates.

use ceal::ml::{metrics, Dataset, GbtParams, GradientBoosting, Regressor};
use ceal::sim::{bounds, Objective, Platform, Simulator};
use ceal::tuner::metrics::{recall_score, top_n};
use proptest::prelude::*;

/// Strategy: a feasible LV configuration (procs, ppn, threads per
/// component, capped so both components fit the 32-node allocation).
fn lv_config() -> impl Strategy<Value = Vec<i64>> {
    (
        2i64..=500,
        1i64..=35,
        1i64..=4,
        2i64..=500,
        1i64..=35,
        1i64..=4,
    )
        .prop_map(|(p1, n1, t1, p2, n2, t2)| vec![p1, n1, t1, p2, n2, t2])
        .prop_filter("allocation fits", |cfg| {
            ceal::apps::lv().feasible(&Platform::default(), cfg)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every feasible LV run lands within the analytic bounds and has
    /// non-negative accounting everywhere.
    #[test]
    fn lv_runs_within_bounds(cfg in lv_config(), seed in 0u64..1000) {
        let spec = ceal::apps::lv();
        let platform = Platform::default();
        let sim = Simulator::noiseless();
        let run = sim.run(&spec, &cfg, seed).unwrap();
        prop_assert!(run.exec_time > 0.0);
        bounds::within_bounds(&platform, &spec, &cfg, run.exec_time, 1e-6)
            .map_err(TestCaseError::fail)?;
        for c in &run.components {
            prop_assert!(c.busy >= 0.0 && c.blocked_on_space >= 0.0 && c.blocked_on_data >= 0.0);
            prop_assert!(c.end_time <= run.exec_time + 1e-9);
        }
        prop_assert!((run.objective(Objective::ComputerTime)
            - run.exec_time * (run.total_nodes * 36) as f64 / 3600.0).abs() < 1e-9);
    }

    /// Noisy measurements stay within a plausible band of the noiseless
    /// value (log-normal with sigma = 0.02 barely moves it).
    #[test]
    fn measurement_noise_is_bounded(cfg in lv_config(), seed in 0u64..200) {
        let spec = ceal::apps::lv();
        let clean = Simulator::noiseless().run(&spec, &cfg, seed).unwrap();
        let noisy = Simulator::new().run(&spec, &cfg, seed).unwrap();
        let ratio = noisy.exec_time / clean.exec_time;
        prop_assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    /// Recall score is always within [0, 100], 100 for self, and symmetric
    /// under exchanging scores/truths.
    #[test]
    fn recall_score_properties(values in prop::collection::vec(0.0f64..1e6, 2..60), n in 1usize..10) {
        let shuffled: Vec<f64> = values.iter().rev().cloned().collect();
        let r = recall_score(n, &shuffled, &values);
        prop_assert!((0.0..=100.0).contains(&r));
        // Eq. 3 divides by n, so a perfect model's recall is capped by the
        // candidate count when n exceeds it.
        let self_recall = recall_score(n, &values, &values);
        let expect = n.min(values.len()) as f64 / n as f64 * 100.0;
        prop_assert!((self_recall - expect).abs() < 1e-9);
        let r_sym = recall_score(n, &values, &shuffled);
        prop_assert!((r - r_sym).abs() < 1e-9, "recall not symmetric: {} vs {}", r, r_sym);
    }

    /// top_n returns sorted-by-value indices without duplicates.
    #[test]
    fn top_n_properties(values in prop::collection::vec(-1e3f64..1e3, 1..50), n in 1usize..20) {
        let idx = top_n(&values, n);
        prop_assert_eq!(idx.len(), n.min(values.len()));
        for w in idx.windows(2) {
            prop_assert!(values[w[0]] <= values[w[1]]);
        }
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), idx.len());
    }

    /// GBT training predictions stay within the convex hull of targets
    /// widened by a small tolerance (squared loss + shrinkage cannot
    /// wildly overshoot on the training set).
    #[test]
    fn gbt_training_predictions_are_bounded(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 4..40),
        bias in 0.0f64..100.0,
    ) {
        let ys: Vec<f64> = rows.iter().map(|r| bias + r.iter().sum::<f64>()).collect();
        let data = Dataset::from_rows(&rows, &ys);
        let mut model = GradientBoosting::new(GbtParams { n_rounds: 40, ..Default::default() });
        model.fit(&data);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-6);
        for i in 0..data.n_rows() {
            let p = model.predict_row(data.row(i));
            prop_assert!(p >= lo - 0.5 * span && p <= hi + 0.5 * span,
                "prediction {} escapes [{}, {}]", p, lo, hi);
        }
    }

    /// MdAPE is invariant under uniform scaling of both inputs.
    #[test]
    fn mdape_scale_invariance(
        pairs in prop::collection::vec((1.0f64..1e4, 1.0f64..1e4), 1..30),
        scale in 0.01f64..100.0,
    ) {
        let (a, p): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let a2: Vec<f64> = a.iter().map(|x| x * scale).collect();
        let p2: Vec<f64> = p.iter().map(|x| x * scale).collect();
        let d1 = metrics::mdape(&a, &p);
        let d2 = metrics::mdape(&a2, &p2);
        prop_assert!((d1 - d2).abs() < 1e-9 * d1.max(1.0));
    }
}
