//! End-to-end exercise of the tuning service: concurrent clients over a
//! real loopback socket, remote/local parity, error-frame retries, the
//! persistent autotune cache, and graceful shutdown.

use ceal::serve::{Client, ServeConfig, Server, ServerHandle, TuneParams};
use ceal::sim::{Objective, Simulator};
use ceal::tuner::{sample_pool, Autotuner, Ceal, CealParams, Oracle, PoolOracle, SimOracle};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn start_server(cache_path: Option<std::path::PathBuf>) -> ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_path,
        ..ServeConfig::default()
    };
    Server::bind(config).expect("bind loopback").spawn()
}

fn temp_cache_path(tag: &str) -> std::path::PathBuf {
    ceal_testutil::unique_temp_path(&format!("ceal-serve-it-{tag}"), "json")
}

fn lv_params(seed: u64, budget: u64) -> TuneParams {
    TuneParams {
        workflow: "LV".into(),
        objective: "comp".into(),
        budget,
        pool: 200,
        seed,
        algo: "ceal".into(),
    }
}

/// Drives a session to completion, retrying any transient
/// `measurement-failed` error frames. Returns how many error frames were
/// seen along the way.
fn drive_to_done(client: &mut Client, session: u64) -> usize {
    let mut failures = 0;
    loop {
        match client.advance(session, 4) {
            Ok(status) if status.state == "done" => {
                assert!(status.best.is_some(), "done session must have a best");
                assert!(status.best_value.is_some());
                return failures;
            }
            Ok(_) => {}
            Err(e) => {
                assert_eq!(
                    e.code(),
                    Some("measurement-failed"),
                    "only transient measurement faults are expected: {e}"
                );
                failures += 1;
                assert!(
                    failures < 200,
                    "fault injection never let the session finish"
                );
            }
        }
    }
}

/// The `--remote` path must reproduce the in-process `tune` CLI exactly:
/// same pool seed, same oracle seed, same algorithm construction — so the
/// recommended configuration and its measured value match bit for bit.
#[test]
fn remote_tune_matches_local_path() {
    let handle = start_server(None);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let params = TuneParams {
        workflow: "LV".into(),
        objective: "comp".into(),
        budget: 25,
        pool: 500,
        seed: 0,
        algo: "ceal".into(),
    };
    let remote = client.tune(params).expect("remote tune");
    assert!(!remote.from_cache);

    // Replicate what `tune --workflow LV --objective comp --budget 25
    // --pool 500 --seed 0` does in-process.
    let spec = ceal::apps::workflow_by_name("LV").unwrap();
    let sim = Simulator::new();
    let seed = 0u64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFACE);
    let pool = sample_pool(&spec, &sim.platform, 500, &mut rng);
    let oracle = PoolOracle::precompute(
        SimOracle::new(sim, spec, Objective::ComputerTime, 2021),
        &pool,
    );
    let algo = Ceal::new(CealParams::without_history());
    let run = algo.run(&oracle, &pool, 25, 0);
    let tuned = oracle.measure(&run.best_predicted);

    assert_eq!(remote.best, run.best_predicted);
    assert_eq!(remote.best_value, tuned.value);
    assert_eq!(remote.runs_used, run.runs_used() as u64);
    assert_eq!(remote.component_runs, run.component_runs.len() as u64);

    client.shutdown().expect("shutdown");
    handle.join().expect("serve loop exits cleanly");
}

/// A second identical request must be answered from the persistent cache
/// with zero additional oracle measurements — proven through the metrics
/// endpoint, and again by a fresh server process warm-loading the cache
/// file from disk.
#[test]
fn warm_cache_answers_without_oracle_measurements() {
    let cache = temp_cache_path("warm");
    let handle = start_server(Some(cache.clone()));
    let mut client = Client::connect(handle.addr()).expect("connect");

    let cold = client.tune(lv_params(3, 12)).expect("cold tune");
    assert!(!cold.from_cache);
    let after_cold = client.metrics().expect("metrics");
    assert!(after_cold.oracle_measurements > 0, "cold run must measure");
    assert_eq!(after_cold.cache_misses, 1);

    let warm = client.tune(lv_params(3, 12)).expect("warm tune");
    assert!(warm.from_cache, "identical request must hit the cache");
    let after_warm = client.metrics().expect("metrics");
    assert_eq!(
        after_warm.oracle_measurements, after_cold.oracle_measurements,
        "a cache hit must not touch the oracle"
    );
    assert_eq!(after_warm.cache_hits, 1);
    assert_eq!(
        (warm.best.clone(), warm.best_value),
        (cold.best, cold.best_value)
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("join");

    // Restart on the persisted file: still warm, still zero measurements.
    let handle = start_server(Some(cache.clone()));
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    let reloaded = client.tune(lv_params(3, 12)).expect("reloaded tune");
    assert!(reloaded.from_cache, "cache must survive a server restart");
    assert_eq!(reloaded.best, warm.best);
    let report = client.metrics().expect("metrics");
    assert_eq!(report.oracle_measurements, 0);

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
    // The cache path is a shard directory now (a legacy file would have
    // been migrated into one).
    let _ = std::fs::remove_dir_all(&cache);
}

/// Four clients run full tuning campaigns concurrently: three clean
/// sessions across different workflows/seeds and one session with fault
/// injection that must surface `measurement-failed` error frames and still
/// converge under the client's retry loop.
#[test]
fn concurrent_sessions_with_fault_injection() {
    let handle = start_server(None);
    let addr = handle.addr();

    let clean: Vec<_> = [("LV", 11u64), ("HS", 12), ("GP", 13)]
        .into_iter()
        .map(|(workflow, seed)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let params = TuneParams {
                    workflow: workflow.into(),
                    objective: "exec".into(),
                    budget: 10,
                    pool: 120,
                    seed,
                    algo: "ceal".into(),
                };
                let (status, from_cache) = client.create_session(params, 0.0, 0).expect("create");
                assert!(!from_cache);
                assert_eq!(status.state, "created");
                let failures = drive_to_done(&mut client, status.session);
                assert_eq!(failures, 0, "{workflow}: no faults were injected");

                // The finished surrogate must score batches of configs.
                let done = client.status(status.session).expect("status");
                let best = done.best.expect("best config");
                let values = client
                    .predict(status.session, vec![best.clone(), best.clone()])
                    .expect("predict");
                assert_eq!(values.len(), 2);
                assert_eq!(values[0], values[1]);

                let (value, exec, comp) = client.measure(status.session, best).expect("measure");
                assert!(value > 0.0 && exec > 0.0 && comp > 0.0);
                client.close_session(status.session).expect("close");
            })
        })
        .collect();

    let faulty = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let (status, _) = client
            .create_session(lv_params(21, 10), 0.4, 77)
            .expect("create faulty");
        let failures = drive_to_done(&mut client, status.session);
        assert!(
            failures > 0,
            "a 40% failure rate must surface at least one error frame"
        );
        client.close_session(status.session).expect("close");
        failures
    });

    for t in clean {
        t.join().expect("clean session thread");
    }
    let failures = faulty.join().expect("faulty session thread");

    let mut client = Client::connect(addr).expect("connect");
    let report = client.metrics().expect("metrics");
    assert_eq!(report.sessions_created, 4);
    assert_eq!(report.active_sessions, 0, "all sessions were closed");
    let advance = report
        .endpoints
        .iter()
        .find(|e| e.name == "advance")
        .expect("advance endpoint traffic");
    assert!(advance.errors >= failures as u64);

    client.shutdown().expect("shutdown");
    handle
        .join()
        .expect("graceful shutdown leaves no stuck threads");
}

/// Shutdown must drain: requests in flight complete, new campaigns are
/// never started, every connection is released, and `join` returns.
#[test]
fn graceful_shutdown_drains_and_joins() {
    let handle = start_server(None);
    let addr = handle.addr();

    let mut worker = Client::connect(addr).expect("connect worker");
    let (status, _) = worker
        .create_session(lv_params(31, 6), 0.0, 0)
        .expect("create");
    let mid = worker
        .advance(status.session, 2)
        .expect("advance pre-drain");
    assert_ne!(mid.state, "done");

    let mut controller = Client::connect(addr).expect("connect controller");
    controller.shutdown().expect("shutdown accepted");

    // While draining, a new campaign is either refused with a
    // `shutting-down` error frame or the connection has already been
    // released at its frame boundary — it must never be served.
    match worker.tune(lv_params(99, 6)) {
        Ok(_) => panic!("new campaign must not start while draining"),
        Err(e) => {
            if let Some(code) = e.code() {
                assert_eq!(code, "shutting-down");
            }
        }
    }

    drop(worker);
    drop(controller);
    handle
        .join()
        .expect("drained serve loop joins with no stuck threads");
}
